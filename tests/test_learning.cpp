// Unit tests for dynamic learning (paper §4.2, Figs. 6-8): predecessor and
// successor learning, instance replication, branch-condition adaptation.
#include <gtest/gtest.h>

#include <algorithm>

#include "core/learning.hpp"
#include "util/error.hpp"
#include "wish_fixture.hpp"

namespace appx::core {
namespace {

using testfix::make_feed_request;
using testfix::make_feed_response;
using testfix::make_product_request;
using testfix::make_product_response;
using testfix::make_wish_set;

class LearningTest : public ::testing::Test {
 protected:
  LearningTest() : set_(make_wish_set()), engine_(&set_) {}

  SignatureSet set_;
  LearningEngine engine_;
};

TEST_F(LearningTest, UnknownTransactionIsIgnored) {
  http::Request req;
  req.uri = http::Uri::parse("https://elsewhere.com/unknown");
  http::Response resp;
  EXPECT_TRUE(engine_.observe(req, resp).empty());
  EXPECT_EQ(engine_.stats().transactions_observed, 1u);
  EXPECT_EQ(engine_.stats().signature_matches, 0u);
}

TEST_F(LearningTest, PredecessorAloneDoesNotReadyInstances) {
  // The feed response provides cids, but the successor's run-time holes
  // (cookie, client, version...) are still unknown -> nothing ready.
  const auto ready = engine_.observe(make_feed_request(), make_feed_response({"09cf", "3gf3"}));
  EXPECT_TRUE(ready.empty());
  // Instances were created but are incomplete.
  const auto* product = set_.find_by_label("wish.product");
  EXPECT_EQ(engine_.instances_of(product->id).size(), 2u);
  for (const auto* instance : engine_.instances_of(product->id)) {
    EXPECT_FALSE(instance->ready());
    const auto missing = instance->missing_holes();
    EXPECT_FALSE(missing.empty());
    EXPECT_EQ(std::find(missing.begin(), missing.end(), "wish.product.cid"), missing.end())
        << "dependency hole should already be bound";
  }
}

TEST_F(LearningTest, SuccessorObservationCompletesInstances) {
  engine_.observe(make_feed_request(), make_feed_response({"09cf", "3gf3", "vm98"}));
  // Client now issues a real product request for one of the ids; the other
  // two instances learn the run-time values and become ready.
  const auto ready =
      engine_.observe(make_product_request("09cf"), make_product_response("Silk", 1200));

  std::vector<std::string> cids;
  for (const auto& rp : ready) {
    if (rp.signature->label == "wish.product") {
      const auto fields = rp.request.form_fields();
      cids.push_back(fields[0].second);
    }
  }
  // All three instances are now complete; the proxy's cache dedup (not the
  // engine) suppresses the one the client already fetched.
  std::sort(cids.begin(), cids.end());
  EXPECT_EQ(cids, (std::vector<std::string>{"09cf", "3gf3", "vm98"}));
}

TEST_F(LearningTest, ReconstructedRequestIsIdenticalToOriginal) {
  engine_.observe(make_feed_request(), make_feed_response({"09cf"}));
  const auto ready =
      engine_.observe(make_product_request("09cf"), make_product_response("Silk", 10));
  const auto it = std::find_if(ready.begin(), ready.end(), [](const ReadyPrefetch& rp) {
    return rp.signature->label == "wish.product";
  });
  ASSERT_NE(it, ready.end());
  // Paper R2: the prefetch request must be identical to the original.
  EXPECT_EQ(it->request.cache_key(), make_product_request("09cf").cache_key());
  EXPECT_EQ(it->request.serialize(), make_product_request("09cf").serialize());
}

TEST_F(LearningTest, ImageInstancesReadyWithoutRuntimeHolesOnceHostKnown) {
  // wish.image has only host + cid holes; cid comes from the feed and host
  // can only be learned from an image observation... host hole is runtime.
  engine_.observe(make_feed_request(), make_feed_response({"09cf"}));
  const auto* image = set_.find_by_label("wish.image");
  ASSERT_EQ(engine_.instances_of(image->id).size(), 1u);
  EXPECT_FALSE(engine_.instances_of(image->id)[0]->ready());

  // Observe one concrete image transaction; its host resolves the hole.
  http::Request img;
  img.uri = http::Uri::parse("https://img.wish.com/img?cid=09cf");
  http::Response img_resp;
  img_resp.opaque_payload = kilobytes(300);
  const auto ready = engine_.observe(img, img_resp);
  // The single known instance matches the one just fetched; it becomes ready.
  ASSERT_EQ(ready.size(), 1u);
  EXPECT_EQ(ready[0].request.uri.host, "img.wish.com");
}

TEST_F(LearningTest, ReplicationCreatesOneInstancePerArrayElement) {
  std::vector<std::string> ids;
  for (int i = 0; i < 30; ++i) ids.push_back("id" + std::to_string(i));
  engine_.observe(make_feed_request(), make_feed_response(ids));
  const auto* product = set_.find_by_label("wish.product");
  const auto* image = set_.find_by_label("wish.image");
  EXPECT_EQ(engine_.instances_of(product->id).size(), 30u);
  EXPECT_EQ(engine_.instances_of(image->id).size(), 30u);
}

TEST_F(LearningTest, RefetchingSameFeedDoesNotDuplicateInstances) {
  engine_.observe(make_feed_request(), make_feed_response({"a", "b"}));
  engine_.observe(make_feed_request(), make_feed_response({"a", "b"}));
  const auto* product = set_.find_by_label("wish.product");
  EXPECT_EQ(engine_.instances_of(product->id).size(), 2u);
}

TEST_F(LearningTest, ChainedDependencyThroughMiddleSignature) {
  // product response carries merchant_name -> related.get instance.
  engine_.observe(make_product_request("556e"), make_product_response("Silk", 1200));
  const auto* related = set_.find_by_label("wish.related");
  const auto instances = engine_.instances_of(related->id);
  ASSERT_EQ(instances.size(), 1u);
  // related has host hole (runtime) unbound; bind via successor observation.
  http::Request rel;
  rel.method = "POST";
  rel.uri = http::Uri::parse("https://wish.com/related/get");
  rel.set_form_fields({{"merchant", "Silk"}});
  http::Response rel_resp;
  rel_resp.body = "{}";
  const auto ready = engine_.observe(rel, rel_resp);
  ASSERT_EQ(ready.size(), 1u);
  EXPECT_EQ(ready[0].signature->label, "wish.related");
}

TEST_F(LearningTest, AdaptsToMostRecentCondition) {
  // First product request carries credit_id (one branch class)...
  engine_.observe(make_product_request("a", /*with_credit=*/true),
                  make_product_response("m", 1));
  // ...then the app switches to the class without credit_id (Fig. 8).
  engine_.observe(make_product_request("b", /*with_credit=*/false),
                  make_product_response("m", 1));
  const auto ready = engine_.observe(make_feed_request(), make_feed_response({"zz"}));
  const auto it = std::find_if(ready.begin(), ready.end(), [](const ReadyPrefetch& rp) {
    return rp.signature->label == "wish.product";
  });
  ASSERT_NE(it, ready.end());
  // The reconstructed request must mimic the most recent instance class:
  // no credit_id field.
  const auto fields = it->request.form_fields();
  EXPECT_TRUE(std::none_of(fields.begin(), fields.end(),
                           [](const auto& kv) { return kv.first == "credit_id"; }));
  EXPECT_EQ(it->request.cache_key(), make_product_request("zz", false).cache_key());
}

TEST_F(LearningTest, RuntimeValueUpdatesFollowLatestObservation) {
  engine_.observe(make_feed_request(), make_feed_response({"x1"}));
  // First successor observation with version 4.13.0.
  engine_.observe(make_product_request("x1"), make_product_response("m", 1));
  // App updates: version changes.
  auto req2 = make_product_request("x2");
  auto fields = req2.form_fields();
  fields[2].second = "4.14.0";  // _ver
  req2.set_form_fields(fields);
  engine_.observe(req2, make_product_response("m", 1));

  const auto ready = engine_.observe(make_feed_request(), make_feed_response({"x3"}));
  const auto it = std::find_if(ready.begin(), ready.end(), [](const ReadyPrefetch& rp) {
    return rp.signature->label == "wish.product";
  });
  ASSERT_NE(it, ready.end());
  const auto out_fields = it->request.form_fields();
  const auto ver = std::find_if(out_fields.begin(), out_fields.end(),
                                [](const auto& kv) { return kv.first == "_ver"; });
  ASSERT_NE(ver, out_fields.end());
  EXPECT_EQ(ver->second, "4.14.0");
}

TEST_F(LearningTest, ReadyInstancesReemittedForProxyDedup) {
  engine_.observe(make_feed_request(), make_feed_response({"a"}));
  const auto first = engine_.observe(make_product_request("a"), make_product_response("m", 1));
  EXPECT_FALSE(first.empty());
  // Re-observing re-emits ready instances: deduplication is the proxy's job
  // (cache + in-flight set), which is what permits re-prefetch after expiry.
  const auto again = engine_.observe(make_product_request("a"), make_product_response("m", 1));
  const auto products = std::count_if(again.begin(), again.end(), [](const ReadyPrefetch& rp) {
    return rp.signature->label == "wish.product";
  });
  EXPECT_EQ(products, 1);
}

TEST_F(LearningTest, MalformedPredecessorBodyIsTolerated) {
  auto resp = make_feed_response({"a"});
  resp.body = "{not json";
  EXPECT_NO_THROW(engine_.observe(make_feed_request(), resp));
  const auto* product = set_.find_by_label("wish.product");
  EXPECT_TRUE(engine_.instances_of(product->id).empty());
}

TEST_F(LearningTest, ErrorResponseNotLearnedAsPredecessor) {
  auto resp = make_feed_response({"a"});
  resp.status = 500;
  engine_.observe(make_feed_request(), resp);
  const auto* product = set_.find_by_label("wish.product");
  EXPECT_TRUE(engine_.instances_of(product->id).empty());
}

TEST_F(LearningTest, StatsAreTracked) {
  engine_.observe(make_feed_request(), make_feed_response({"a", "b"}));
  engine_.observe(make_product_request("a"), make_product_response("m", 1));
  const LearningStats& stats = engine_.stats();
  EXPECT_EQ(stats.transactions_observed, 2u);
  EXPECT_EQ(stats.signature_matches, 2u);
  EXPECT_EQ(stats.predecessor_events, 2u);  // feed and product both predecessors
  EXPECT_EQ(stats.successor_events, 1u);    // product
  EXPECT_GE(stats.instances_created, 3u);   // 2 products + 2 images + 1 related
  EXPECT_GT(stats.instances_ready, 0u);
}

TEST(RequestInstance, MaterializeBeforeReadyThrows) {
  const auto set = make_wish_set();
  const auto* product = set.find_by_label("wish.product");
  RequestInstance instance(product, {{"wish.product.cid", "x"}});
  EXPECT_FALSE(instance.ready());
  EXPECT_THROW(instance.materialize(), InvalidStateError);
}

TEST(RequestInstance, FingerprintDependsOnDependencyBindingsOnly) {
  const auto set = make_wish_set();
  const auto* product = set.find_by_label("wish.product");
  RequestInstance a(product, {{"wish.product.cid", "x"}});
  RequestInstance b(product, {{"wish.product.cid", "x"}});
  RequestInstance c(product, {{"wish.product.cid", "y"}});
  EXPECT_EQ(a.fingerprint(), b.fingerprint());
  EXPECT_NE(a.fingerprint(), c.fingerprint());
  b.bind({{"wish.cookie", "zz"}});
  EXPECT_EQ(a.fingerprint(), b.fingerprint());
}

TEST_F(LearningTest, InstancePoolEvictionKeepsMemoryBounded) {
  // Streams of huge feeds must not grow the instance pool without bound:
  // issued instances are evicted once the pool passes its cap.
  std::vector<std::string> ids;
  for (int round = 0; round < 5; ++round) {
    ids.clear();
    for (int i = 0; i < 600; ++i) {
      ids.push_back("r" + std::to_string(round) + "_" + std::to_string(i));
    }
    engine_.observe(make_feed_request(), make_feed_response(ids));
    // Mark everything ready+issued by teaching the run-time values.
    engine_.observe(make_product_request(ids[0]), make_product_response("m", 1));
  }
  const auto* product = set_.find_by_label("wish.product");
  EXPECT_LE(engine_.instances_of(product->id).size(), 2700u);
}

TEST(LearningEngine, NullSignatureSetRejected) {
  EXPECT_THROW(LearningEngine(nullptr), InvalidArgumentError);
}

// Grouped extraction: two dependency fields reading different paths of the
// SAME array element must land in the same instance (paper Fig. 12: id and
// merchant_name of one product feed three different pages).
TEST(LearningEngine, GroupedArrayFieldsStayTogether) {
  SignatureSet set;
  TransactionSignature pred;
  pred.app = "t";
  pred.label = "t.list";
  pred.request.method = "GET";
  pred.request.scheme = pattern::FieldTemplate::literal("https");
  pred.request.host = pattern::FieldTemplate::literal("a.example");
  pred.request.path = pattern::FieldTemplate::literal("/list");
  pred.response.fields = {{"items[*].id", ".*"}, {"items[*].token", ".*"}};
  const auto& pred_ref = set.add(pred);

  TransactionSignature succ;
  succ.app = "t";
  succ.label = "t.item";
  succ.request.method = "GET";
  succ.request.scheme = pattern::FieldTemplate::literal("https");
  succ.request.host = pattern::FieldTemplate::literal("a.example");
  succ.request.path = pattern::FieldTemplate::literal("/item");
  succ.request.query = {
      {FieldLocation::kQuery, "id", pattern::FieldTemplate::hole("d.id"), false},
      {FieldLocation::kQuery, "tok", pattern::FieldTemplate::hole("d.tok"), false},
  };
  const auto& succ_ref = set.add(succ);
  set.add_edge({pred_ref.id, "items[*].id", succ_ref.id, "d.id"});
  set.add_edge({pred_ref.id, "items[*].token", succ_ref.id, "d.tok"});

  LearningEngine engine(&set);
  http::Request req;
  req.uri = http::Uri::parse("https://a.example/list");
  http::Response resp;
  resp.body = R"({"items":[{"id":"i1","token":"t1"},{"id":"i2","token":"t2"}]})";
  const auto ready = engine.observe(req, resp);
  ASSERT_EQ(ready.size(), 2u);  // no run-time holes: immediately ready
  // Each instance pairs the id and token of ONE element.
  for (const auto& rp : ready) {
    const auto id = rp.request.uri.query_param("id");
    const auto tok = rp.request.uri.query_param("tok");
    ASSERT_TRUE(id && tok);
    EXPECT_EQ(id->substr(1), tok->substr(1)) << "mismatched element pairing";
  }
}

// A scalar dependency shared by every replicated instance (the paper's
// "merchant login name" alongside per-item ids).
TEST(LearningEngine, ScalarDependencySharedAcrossReplicas) {
  SignatureSet set;
  TransactionSignature pred;
  pred.app = "t";
  pred.label = "t.page";
  pred.request.method = "GET";
  pred.request.scheme = pattern::FieldTemplate::literal("https");
  pred.request.host = pattern::FieldTemplate::literal("a.example");
  pred.request.path = pattern::FieldTemplate::literal("/page");
  pred.response.fields = {{"session", ".*"}, {"rows[*].id", ".*"}};
  const auto& pred_ref = set.add(pred);

  TransactionSignature succ;
  succ.app = "t";
  succ.label = "t.row";
  succ.request.method = "GET";
  succ.request.scheme = pattern::FieldTemplate::literal("https");
  succ.request.host = pattern::FieldTemplate::literal("a.example");
  succ.request.path = pattern::FieldTemplate::literal("/row");
  succ.request.query = {
      {FieldLocation::kQuery, "id", pattern::FieldTemplate::hole("d.id"), false},
      {FieldLocation::kQuery, "s", pattern::FieldTemplate::hole("d.s"), false},
  };
  const auto& succ_ref = set.add(succ);
  set.add_edge({pred_ref.id, "rows[*].id", succ_ref.id, "d.id"});
  set.add_edge({pred_ref.id, "session", succ_ref.id, "d.s"});

  LearningEngine engine(&set);
  http::Request req;
  req.uri = http::Uri::parse("https://a.example/page");
  http::Response resp;
  resp.body = R"({"session":"s77","rows":[{"id":"r1"},{"id":"r2"},{"id":"r3"}]})";
  const auto ready = engine.observe(req, resp);
  ASSERT_EQ(ready.size(), 3u);
  for (const auto& rp : ready) {
    EXPECT_EQ(rp.request.uri.query_param("s").value(), "s77");
  }
}

}  // namespace
}  // namespace appx::core
