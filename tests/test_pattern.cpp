// Unit and property tests for the regex engine and field templates.
#include <gtest/gtest.h>

#include "pattern/regex.hpp"
#include "pattern/template.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace appx::pattern {
namespace {

// --- Regex ---------------------------------------------------------------------

TEST(Regex, LiteralMatch) {
  const Regex re("abc");
  EXPECT_TRUE(re.full_match("abc"));
  EXPECT_FALSE(re.full_match("ab"));
  EXPECT_FALSE(re.full_match("abcd"));
  EXPECT_FALSE(re.full_match(""));
}

TEST(Regex, EmptyPatternMatchesEmpty) {
  const Regex re("");
  EXPECT_TRUE(re.full_match(""));
  EXPECT_FALSE(re.full_match("a"));
}

TEST(Regex, DotMatchesAnySingleChar) {
  const Regex re("a.c");
  EXPECT_TRUE(re.full_match("abc"));
  EXPECT_TRUE(re.full_match("a/c"));
  EXPECT_FALSE(re.full_match("ac"));
  EXPECT_FALSE(re.full_match("abbc"));
}

TEST(Regex, StarQuantifier) {
  const Regex re("ab*c");
  EXPECT_TRUE(re.full_match("ac"));
  EXPECT_TRUE(re.full_match("abc"));
  EXPECT_TRUE(re.full_match("abbbbc"));
  EXPECT_FALSE(re.full_match("adc"));
}

TEST(Regex, PlusQuantifier) {
  const Regex re("ab+c");
  EXPECT_FALSE(re.full_match("ac"));
  EXPECT_TRUE(re.full_match("abc"));
  EXPECT_TRUE(re.full_match("abbc"));
}

TEST(Regex, OptionalQuantifier) {
  const Regex re("colou?r");
  EXPECT_TRUE(re.full_match("color"));
  EXPECT_TRUE(re.full_match("colour"));
  EXPECT_FALSE(re.full_match("colouur"));
}

TEST(Regex, DotStar) {
  const Regex re(".*");
  EXPECT_TRUE(re.full_match(""));
  EXPECT_TRUE(re.full_match("anything at all !@#"));
}

TEST(Regex, PaperStyleUriPattern) {
  // The paper's signatures: ".*/api/get-feed"
  const Regex re(".*/api/get-feed");
  EXPECT_TRUE(re.full_match("https://wish.com/api/get-feed"));
  EXPECT_TRUE(re.full_match("/api/get-feed"));
  EXPECT_FALSE(re.full_match("https://wish.com/api/get-feed2"));
}

TEST(Regex, Alternation) {
  const Regex re("(0|-1)");
  EXPECT_TRUE(re.full_match("0"));
  EXPECT_TRUE(re.full_match("-1"));
  EXPECT_FALSE(re.full_match("1"));
  EXPECT_FALSE(re.full_match("-0"));
}

TEST(Regex, AlternationTopLevel) {
  const Regex re("cat|dog|bird");
  EXPECT_TRUE(re.full_match("cat"));
  EXPECT_TRUE(re.full_match("dog"));
  EXPECT_TRUE(re.full_match("bird"));
  EXPECT_FALSE(re.full_match("catdog"));
}

TEST(Regex, EmptyAlternationBranch) {
  const Regex re("a(|b)c");
  EXPECT_TRUE(re.full_match("ac"));
  EXPECT_TRUE(re.full_match("abc"));
}

TEST(Regex, GroupedQuantifier) {
  const Regex re("(ab)+");
  EXPECT_TRUE(re.full_match("ab"));
  EXPECT_TRUE(re.full_match("ababab"));
  EXPECT_FALSE(re.full_match("aba"));
  EXPECT_FALSE(re.full_match(""));
}

TEST(Regex, CharacterClass) {
  const Regex re("[a-f0-9]+");
  EXPECT_TRUE(re.full_match("09cf"));
  EXPECT_TRUE(re.full_match("deadbeef"));
  EXPECT_FALSE(re.full_match("xyz"));
  EXPECT_FALSE(re.full_match(""));
}

TEST(Regex, NegatedClass) {
  const Regex re("[^/]+");
  EXPECT_TRUE(re.full_match("segment"));
  EXPECT_FALSE(re.full_match("a/b"));
}

TEST(Regex, ClassWithLiteralDashAndBracket) {
  const Regex re("[a\\-b]+");
  EXPECT_TRUE(re.full_match("a-b"));
  const Regex re2("[]a]+");  // ']' first means literal ']'
  EXPECT_TRUE(re2.full_match("]a"));
}

TEST(Regex, EscapedMetacharacters) {
  const Regex re("a\\.b\\*c");
  EXPECT_TRUE(re.full_match("a.b*c"));
  EXPECT_FALSE(re.full_match("axb*c"));
}

TEST(Regex, EscapeHelperProducesExactMatcher) {
  const std::string nasty = "/product/get?a=(1+2)*[3].|x";
  const Regex re(Regex::escape(nasty));
  EXPECT_TRUE(re.full_match(nasty));
  EXPECT_FALSE(re.full_match(nasty + "x"));
}

TEST(Regex, LongestPrefixMatch) {
  const Regex re("ab*");
  EXPECT_EQ(re.longest_prefix_match("abbbc"), 4);
  EXPECT_EQ(re.longest_prefix_match("x"), -1);
  EXPECT_EQ(re.longest_prefix_match("a"), 1);
  const Regex any(".*");
  EXPECT_EQ(any.longest_prefix_match("xyz"), 3);
}

TEST(Regex, ParseErrors) {
  EXPECT_THROW(Regex("("), ParseError);
  EXPECT_THROW(Regex(")"), ParseError);
  EXPECT_THROW(Regex("*a"), ParseError);
  EXPECT_THROW(Regex("[abc"), ParseError);
  EXPECT_THROW(Regex("a\\"), ParseError);
  EXPECT_THROW(Regex("[z-a]"), ParseError);
}

TEST(Regex, NestedGroups) {
  const Regex re("((a|b)c)*d");
  EXPECT_TRUE(re.full_match("d"));
  EXPECT_TRUE(re.full_match("acd"));
  EXPECT_TRUE(re.full_match("acbcd"));
  EXPECT_FALSE(re.full_match("abd"));
}

// Pathological backtracking case: NFA simulation must stay linear.
TEST(Regex, NoCatastrophicBacktracking) {
  const Regex re("(a*)*b");
  std::string input(2000, 'a');
  EXPECT_FALSE(re.full_match(input));  // returns quickly
  input += 'b';
  EXPECT_TRUE(re.full_match(input));
}

// --- lazy DFA ---------------------------------------------------------------------

// Edge cases that historically diverge between DFA caches and NFA references.

TEST(Regex, DfaEmptyAlternationBranches) {
  for (const char* pattern : {"(|a)b", "a(b|)", "(|)", "(a||b)c"}) {
    const Regex re(pattern);
    for (const char* input : {"", "a", "b", "ab", "ac", "bc", "c", "abc"}) {
      EXPECT_EQ(re.longest_prefix_match(input), re.longest_prefix_match_nfa(input))
          << "pattern '" << pattern << "' input '" << input << "'";
    }
  }
}

TEST(Regex, DfaNegatedClasses) {
  const Regex re("[^/?]+");
  EXPECT_TRUE(re.full_match("segment"));
  EXPECT_FALSE(re.full_match("seg/ment"));
  EXPECT_FALSE(re.full_match(""));
  EXPECT_EQ(re.longest_prefix_match("abc/def"), 3);
  EXPECT_EQ(re.longest_prefix_match_nfa("abc/def"), 3);
  // Negation covers the full byte range, including high bytes.
  EXPECT_TRUE(re.full_match("\xc3\xa9"));
}

TEST(Regex, DfaDotStarAffixes) {
  const Regex re(".*/api/get-feed");
  EXPECT_TRUE(re.full_match("https://api.wish.example/api/get-feed"));
  EXPECT_TRUE(re.full_match("/api/get-feed"));
  EXPECT_FALSE(re.full_match("/api/get-feed/extra"));
  const Regex suffix("cid=.*");
  EXPECT_EQ(suffix.longest_prefix_match("cid=0c99f"), 9);
  EXPECT_EQ(suffix.longest_prefix_match("cid"), -1);
  // ".*" both sides: any containing string matches whole.
  const Regex both(".*feed.*");
  EXPECT_TRUE(both.full_match("xxfeedyy"));
  EXPECT_FALSE(both.full_match("xxfeexy"));
}

TEST(Regex, DfaStatesAreCachedAcrossMatches) {
  const Regex re(".*/api/tab/[0-9]+/content");
  EXPECT_EQ(re.dfa_state_count(), 0u);  // cold until the first match
  EXPECT_TRUE(re.full_match("https://x/api/tab/7/content"));
  const std::size_t after_first = re.dfa_state_count();
  EXPECT_GT(after_first, 0u);
  // A repeat of the same input discovers no new states.
  EXPECT_TRUE(re.full_match("https://x/api/tab/7/content"));
  EXPECT_EQ(re.dfa_state_count(), after_first);
}

TEST(Regex, DfaCacheBlowupFallsBackToNfa) {
  // (a|b)*a(a|b)^13 needs 2^14 DFA states — far past the cache cap. Results
  // must still be exact via the NFA fallback.
  std::string pattern = "(a|b)*a";
  for (int i = 0; i < 13; ++i) pattern += "(a|b)";
  const Regex re(pattern);
  Rng rng(42);
  for (int round = 0; round < 200; ++round) {
    std::string input;
    const std::size_t n = 10 + rng.index(10);
    for (std::size_t i = 0; i < n; ++i) input += (rng.chance(0.5) ? 'a' : 'b');
    ASSERT_EQ(re.longest_prefix_match(input), re.longest_prefix_match_nfa(input)) << input;
  }
  EXPECT_LE(re.dfa_state_count(), 512u);  // cap held
}

TEST(Regex, RequiredPrefix) {
  EXPECT_EQ(Regex("/product/get").required_prefix(), "/product/get");
  EXPECT_EQ(Regex("/api/v[0-9]+").required_prefix(), "/api/v");
  EXPECT_EQ(Regex("/img(/small)?").required_prefix(), "/img");
  EXPECT_EQ(Regex("(0|-1)").required_prefix(), "");
  EXPECT_EQ(Regex(".*").required_prefix(), "");
  EXPECT_EQ(Regex("").required_prefix(), "");
  EXPECT_EQ(Regex("a+b").required_prefix(), "a");  // 'a' required, count open
  EXPECT_EQ(Regex("\\.well-known").required_prefix(), ".well-known");
}

// --- FieldTemplate ---------------------------------------------------------------

TEST(FieldTemplate, LiteralOnly) {
  const auto t = FieldTemplate::literal("/product/get");
  EXPECT_TRUE(t.is_concrete());
  EXPECT_TRUE(t.matches("/product/get"));
  EXPECT_FALSE(t.matches("/product/get2"));
  EXPECT_EQ(t.concrete_value().value(), "/product/get");
}

TEST(FieldTemplate, EmptyTemplateMatchesEmptyOnly) {
  const FieldTemplate t;
  EXPECT_TRUE(t.matches(""));
  EXPECT_FALSE(t.matches("x"));
}

TEST(FieldTemplate, SingleHoleExtraction) {
  const auto t = FieldTemplate::parse("/image?cid={id}");
  EXPECT_FALSE(t.is_concrete());
  EXPECT_EQ(t.hole_count(), 1u);
  const auto b = t.extract("/image?cid=09cf");
  ASSERT_TRUE(b.has_value());
  EXPECT_EQ(b->at("id"), "09cf");
}

TEST(FieldTemplate, FillReconstructsExactValue) {
  const auto t = FieldTemplate::parse("/image?cid={id}");
  Bindings b{{"id", "09cf"}};
  EXPECT_EQ(t.fill(b).value(), "/image?cid=09cf");
}

TEST(FieldTemplate, FillFailsOnMissingBinding) {
  const auto t = FieldTemplate::parse("{a}/{b}");
  EXPECT_FALSE(t.fill({{"a", "x"}}).has_value());
}

TEST(FieldTemplate, PartialFillKeepsUnboundHoles) {
  const auto t = FieldTemplate::parse("{scheme}://{host}/api");
  const auto partial = t.partial_fill({{"host", "wish.com"}});
  EXPECT_EQ(partial.hole_count(), 1u);
  EXPECT_EQ(partial.fill({{"scheme", "https"}}).value(), "https://wish.com/api");
}

TEST(FieldTemplate, MultiHoleExtraction) {
  const auto t = FieldTemplate::parse("{host}/product/{pid}/rating");
  const auto b = t.extract("wish.com/product/42/rating");
  ASSERT_TRUE(b.has_value());
  EXPECT_EQ(b->at("host"), "wish.com");
  EXPECT_EQ(b->at("pid"), "42");
}

TEST(FieldTemplate, RepeatedHoleMustAgree) {
  const auto t = FieldTemplate::parse("{x}-{x}");
  EXPECT_TRUE(t.matches("a-a"));
  const auto b = t.extract("ab-ab");
  ASSERT_TRUE(b.has_value());
  EXPECT_EQ(b->at("x"), "ab");
  EXPECT_FALSE(t.extract("a-b").has_value());
}

TEST(FieldTemplate, ShapedHoleConstrainsValues) {
  const auto t = FieldTemplate::parse("offset={o:(0|-1)}");
  EXPECT_TRUE(t.matches("offset=0"));
  EXPECT_TRUE(t.matches("offset=-1"));
  EXPECT_FALSE(t.matches("offset=5"));
}

TEST(FieldTemplate, ShapedHoleHexId) {
  const auto t = FieldTemplate::parse("cid={cid:[0-9a-f]+}");
  const auto b = t.extract("cid=0c99f");
  ASSERT_TRUE(b.has_value());
  EXPECT_EQ(b->at("cid"), "0c99f");
  EXPECT_FALSE(t.extract("cid=XYZ").has_value());
}

TEST(FieldTemplate, AdjacentHolesShortestLeftmost) {
  const auto t = FieldTemplate::parse("{a:[0-9]+}{b:[a-z]+}");
  const auto b = t.extract("12ab");
  ASSERT_TRUE(b.has_value());
  EXPECT_EQ(b->at("a"), "12");
  EXPECT_EQ(b->at("b"), "ab");
}

TEST(FieldTemplate, ToRegexString) {
  const auto t = FieldTemplate::parse("/api/get-feed?v={v}");
  // Literal metacharacters are escaped; holes become their shape.
  EXPECT_EQ(t.to_regex_string(), "/api/get-feed\\?v=.*");
}

TEST(FieldTemplate, ToDisplayStringRoundTrip) {
  const auto t = FieldTemplate::parse("{scheme}://{host:[a-z.]+}/x");
  const auto reparsed = FieldTemplate::parse(t.to_display_string());
  EXPECT_EQ(t, reparsed);
}

TEST(FieldTemplate, ParseEscapedBraces) {
  const auto t = FieldTemplate::parse("{{literal}}");
  EXPECT_TRUE(t.is_concrete());
  EXPECT_EQ(t.concrete_value().value(), "{literal}");
}

TEST(FieldTemplate, ParseErrors) {
  EXPECT_THROW(FieldTemplate::parse("{unterminated"), ParseError);
  EXPECT_THROW(FieldTemplate::parse("{}"), ParseError);
  EXPECT_THROW(FieldTemplate::parse("stray}brace"), ParseError);
  EXPECT_THROW(FieldTemplate::parse("{name:}"), ParseError);
}

TEST(FieldTemplate, AppendMergesAdjacentLiterals) {
  FieldTemplate t;
  t.append_literal("a").append_literal("b");
  EXPECT_EQ(t.segments().size(), 1u);
  EXPECT_EQ(t.concrete_value().value(), "ab");
}

TEST(FieldTemplate, AppendTemplate) {
  auto t = FieldTemplate::literal("https://");
  t.append(FieldTemplate::hole("host"));
  t.append(FieldTemplate::literal("/api"));
  EXPECT_EQ(t.fill({{"host", "geek.com"}}).value(), "https://geek.com/api");
}

TEST(FieldTemplate, HoleNamesDeduplicated) {
  const auto t = FieldTemplate::parse("{x}/{y}/{x}");
  EXPECT_EQ(t.hole_count(), 3u);  // three hole segments
  EXPECT_TRUE(t.has_hole("x"));
  EXPECT_TRUE(t.has_hole("y"));
  EXPECT_FALSE(t.has_hole("z"));
}

TEST(FieldTemplate, SerializationRoundTrip) {
  const auto t = FieldTemplate::parse("/p/{id:[0-9]+}/img?size={s}");
  ByteWriter w;
  t.serialize(w);
  ByteReader r(w.data());
  const auto back = FieldTemplate::deserialize(r);
  EXPECT_EQ(t, back);
  EXPECT_TRUE(r.at_end());
}

// Property-style sweep: extract-then-fill must reproduce the input exactly
// for a variety of template/value shapes.
struct RoundTripCase {
  const char* spec;
  const char* value;
};

class TemplateRoundTrip : public ::testing::TestWithParam<RoundTripCase> {};

TEST_P(TemplateRoundTrip, ExtractThenFillIsIdentity) {
  const auto& param = GetParam();
  const auto t = FieldTemplate::parse(param.spec);
  const auto bindings = t.extract(param.value);
  ASSERT_TRUE(bindings.has_value()) << param.spec << " vs " << param.value;
  EXPECT_EQ(t.fill(*bindings).value(), param.value);
}

INSTANTIATE_TEST_SUITE_P(
    Cases, TemplateRoundTrip,
    ::testing::Values(
        RoundTripCase{"/api/get-feed", "/api/get-feed"},
        RoundTripCase{"/img?cid={c}", "/img?cid=0c99f"},
        RoundTripCase{"{h}/api", "wish.com/api"},
        RoundTripCase{"{a}-{b}", "x-y"},
        RoundTripCase{"{a}-{b}-{a}", "x-y-x"},
        RoundTripCase{"v={v:[0-9.]+}&b={b}", "v=4.13.0&b=amazon"},
        RoundTripCase{"{s}://{h}:{p:[0-9]+}{path}", "https://a.com:8443/x/y"},
        RoundTripCase{"prefix{x}", "prefixsuffix"},
        RoundTripCase{"{x}suffix", "valuesuffix"},
        RoundTripCase{"{x}", ""},
        RoundTripCase{"a{x}b{y}c", "a1b2c"}));

}  // namespace
}  // namespace appx::pattern
