// Unit tests for the SAPK IR: builder, program model, binary round-trip.
#include <set>
#include <gtest/gtest.h>

#include "ir/program.hpp"
#include "util/error.hpp"

namespace appx::ir {
namespace {

Method make_sample_method() {
  MethodBuilder b("Feed.load", 1);
  const Reg host = b.env("host");
  const Reg prefix = b.const_str("https://");
  const Reg path = b.const_str("/api/get-feed");
  const Reg url = b.concat({prefix, host, path});
  const Reg req = b.http_new();
  b.http_method(req, "GET");
  b.http_url(req, url);
  const Reg offset = b.const_str("0");
  b.http_query(req, "offset", offset);
  b.if_env("has_credit");
  const Reg credit = b.env("credit_id");
  b.http_body(req, "credit_id", credit);
  b.end_if();
  const Reg resp = b.http_send(req, "test.feed");
  const Reg ids = b.json_get(resp, "data.products");
  const Reg mapped = b.rx_flat_map(ids, "Feed.onItem");
  b.intent_put("item", mapped);
  b.ret(resp);
  return b.build();
}

TEST(MethodBuilder, ProducesExpectedShape) {
  const Method m = make_sample_method();
  EXPECT_EQ(m.name, "Feed.load");
  EXPECT_EQ(m.param_count, 1);
  EXPECT_GT(m.reg_count, m.param_count);
  EXPECT_EQ(m.code.size(), 19u);
  EXPECT_EQ(m.code.front().op, OpCode::kEnv);
  EXPECT_EQ(m.code.back().op, OpCode::kReturn);
}

TEST(MethodBuilder, ParamRegistersComeFirst) {
  MethodBuilder b("C.m", 2);
  EXPECT_EQ(b.param(0), 0);
  EXPECT_EQ(b.param(1), 1);
  EXPECT_EQ(b.fresh(), 2);
  EXPECT_THROW(b.param(2), InvalidArgumentError);
  EXPECT_THROW(b.param(-1), InvalidArgumentError);
}

TEST(MethodBuilder, UnbalancedIfRejected) {
  MethodBuilder b("C.m");
  b.if_env("flag");
  EXPECT_THROW(b.build(), InvalidStateError);
  MethodBuilder b2("C.m2");
  EXPECT_THROW(b2.end_if(), InvalidStateError);
}

TEST(MethodBuilder, FormatValidatesArity) {
  MethodBuilder b("C.m");
  const Reg host = b.env("host");
  const Reg id = b.const_str("42");
  EXPECT_NO_THROW(b.format("https://%s/item/%s", {host, id}));
  EXPECT_THROW(b.format("https://%s/item/%s", {host}), InvalidArgumentError);
  EXPECT_THROW(b.format("no placeholders", {host}), InvalidArgumentError);
  EXPECT_NO_THROW(b.format("static", {}));
}

TEST(MethodBuilder, ConcatRequiresParts) {
  MethodBuilder b("C.m");
  EXPECT_THROW(b.concat({}), InvalidArgumentError);
}

TEST(MethodBuilder, SendRejectsBadBodyKind) {
  MethodBuilder b("C.m");
  const Reg req = b.http_new();
  EXPECT_THROW(b.http_send(req, "x", "xml"), InvalidArgumentError);
}

TEST(Program, FindAndGetMethod) {
  Program p;
  p.app = "com.test";
  p.methods.push_back(make_sample_method());
  EXPECT_NE(p.find_method("Feed.load"), nullptr);
  EXPECT_EQ(p.find_method("Nope.load"), nullptr);
  EXPECT_THROW(p.get_method("Nope.load"), NotFoundError);
  EXPECT_EQ(p.instruction_count(), 19u);
}

TEST(Program, SerializeRoundTrip) {
  Program p;
  p.app = "com.test.app";
  p.methods.push_back(make_sample_method());
  MethodBuilder b2("Item.open", 2);
  const Reg v = b2.intent_get("item");
  b2.ret(v);
  p.methods.push_back(b2.build());
  p.entry_points = {"Feed.load", "Item.open"};

  const auto blob = p.serialize();
  const Program back = Program::deserialize(blob);
  EXPECT_EQ(back.app, p.app);
  ASSERT_EQ(back.methods.size(), 2u);
  EXPECT_EQ(back.entry_points, p.entry_points);
  const Method& m = back.methods[0];
  ASSERT_EQ(m.code.size(), p.methods[0].code.size());
  for (std::size_t i = 0; i < m.code.size(); ++i) {
    EXPECT_EQ(m.code[i].op, p.methods[0].code[i].op) << "instr " << i;
    EXPECT_EQ(m.code[i].dst, p.methods[0].code[i].dst);
    EXPECT_EQ(m.code[i].a, p.methods[0].code[i].a);
    EXPECT_EQ(m.code[i].b, p.methods[0].code[i].b);
    EXPECT_EQ(m.code[i].s, p.methods[0].code[i].s);
    EXPECT_EQ(m.code[i].s2, p.methods[0].code[i].s2);
    EXPECT_EQ(m.code[i].args, p.methods[0].code[i].args);
  }
}

TEST(Program, DeserializeRejectsGarbage) {
  EXPECT_THROW(Program::deserialize({0, 1, 2, 3}), ParseError);
  // Valid magic but truncated.
  std::vector<std::uint8_t> bad{0x53, 0x41, 0x50, 0x4b};
  EXPECT_THROW(Program::deserialize(bad), ParseError);
}

TEST(Program, DeserializeRejectsBadOpcode) {
  Program p;
  p.app = "x";
  MethodBuilder b("C.m");
  b.const_str("v");
  p.methods.push_back(b.build());
  auto blob = p.serialize();
  // The opcode byte of the first instruction: find it by corrupting the
  // last-but-n byte region; easier: flip every byte until ParseError message
  // differs is overkill — instead, locate the known opcode position.
  // Layout: magic(4) version(4) applen(4)+app(1) nmethods(4) namelen(4)+name(3)
  //         params(4) regs(4) ninstr(4) opcode(1)...
  const std::size_t opcode_pos = 4 + 4 + 4 + 1 + 4 + 4 + 3 + 4 + 4 + 4;
  ASSERT_LT(opcode_pos, blob.size());
  ASSERT_EQ(blob[opcode_pos], static_cast<std::uint8_t>(OpCode::kConst));
  blob[opcode_pos] = 0xff;
  EXPECT_THROW(Program::deserialize(blob), ParseError);
}

TEST(OpCodeNames, AllDistinct) {
  std::set<std::string_view> names;
  for (int op = 0; op <= static_cast<int>(OpCode::kFormat); ++op) {
    names.insert(to_string(static_cast<OpCode>(op)));
  }
  EXPECT_EQ(names.size(), static_cast<std::size_t>(OpCode::kFormat) + 1);
  EXPECT_FALSE(names.contains("?"));
}

}  // namespace
}  // namespace appx::ir
