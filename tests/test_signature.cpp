// Unit tests for transaction signatures, matching, and the signature set.
#include <gtest/gtest.h>

#include "core/signature.hpp"
#include "core/signature_index.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"
#include "wish_fixture.hpp"

namespace appx::core {
namespace {

using testfix::make_feed_request;
using testfix::make_feed_signature;
using testfix::make_image_signature;
using testfix::make_product_request;
using testfix::make_product_signature;
using testfix::make_wish_set;

TEST(TransactionSignature, FinalizeAssignsStableId) {
  auto a = make_feed_signature();
  auto b = make_feed_signature();
  EXPECT_FALSE(a.id.empty());
  EXPECT_EQ(a.id, b.id);  // content-addressed

  b.request.method = "POST";
  b.finalize();
  EXPECT_NE(a.id, b.id);
}

TEST(TransactionSignature, IdIgnoresLabel) {
  auto a = make_feed_signature();
  auto b = make_feed_signature();
  b.label = "renamed";
  b.finalize();
  EXPECT_EQ(a.id, b.id);
}

TEST(TransactionSignature, UriRegexDisplayForm) {
  const auto sig = make_feed_signature();
  EXPECT_EQ(sig.uri_regex(), "https://.*/api/get-feed");
}

TEST(TransactionSignature, MatchExtractsBindings) {
  const auto sig = make_feed_signature();
  const auto bindings = sig.match(make_feed_request());
  ASSERT_TRUE(bindings.has_value());
  EXPECT_EQ(bindings->at("wish.host"), "wish.com");
  EXPECT_EQ(bindings->at("wish.cookie"), "e8d5");
  EXPECT_EQ(bindings->at("o"), "0");
  EXPECT_EQ(bindings->at("n"), "30");
}

TEST(TransactionSignature, MatchRejectsWrongMethod) {
  const auto sig = make_feed_signature();
  auto req = make_feed_request();
  req.method = "POST";
  EXPECT_FALSE(sig.match(req).has_value());
}

TEST(TransactionSignature, MatchRejectsWrongPath) {
  const auto sig = make_feed_signature();
  auto req = make_feed_request();
  req.uri.path = "/api/get-feed2";
  EXPECT_FALSE(sig.match(req).has_value());
}

TEST(TransactionSignature, MatchRejectsShapeViolation) {
  const auto sig = make_feed_signature();
  auto req = make_feed_request();
  req.uri.set_query_param("offset", "7");  // shape is (0|-1)
  EXPECT_FALSE(sig.match(req).has_value());
}

TEST(TransactionSignature, MatchRejectsMissingRequiredQuery) {
  const auto sig = make_feed_signature();
  auto req = make_feed_request();
  req.uri.remove_query_param("count");
  EXPECT_FALSE(sig.match(req).has_value());
}

TEST(TransactionSignature, MatchRejectsExtraQueryParam) {
  const auto sig = make_feed_signature();
  auto req = make_feed_request();
  req.uri.add_query_param("extra", "1");
  EXPECT_FALSE(sig.match(req).has_value());
}

TEST(TransactionSignature, MatchAllowsExtraHeaders) {
  const auto sig = make_feed_signature();
  auto req = make_feed_request();
  req.headers.add("Accept-Language", "en");
  EXPECT_TRUE(sig.match(req).has_value());
}

TEST(TransactionSignature, MatchFormBodyWithOptionalAbsent) {
  const auto sig = make_product_signature();
  const auto result = sig.match_ex(make_product_request("556e", /*with_credit=*/false));
  ASSERT_TRUE(result.has_value());
  EXPECT_EQ(result->bindings.at("wish.product.cid"), "556e");
  ASSERT_EQ(result->absent_optional.size(), 1u);
  EXPECT_EQ(result->absent_optional[0], "body:credit_id");
}

TEST(TransactionSignature, MatchFormBodyWithOptionalPresent) {
  const auto sig = make_product_signature();
  const auto result = sig.match_ex(make_product_request("556e", /*with_credit=*/true));
  ASSERT_TRUE(result.has_value());
  EXPECT_TRUE(result->absent_optional.empty());
  EXPECT_EQ(result->bindings.at("wish.credit"), "cc01");
}

TEST(TransactionSignature, MatchRejectsLiteralBodyMismatch) {
  const auto sig = make_product_signature();
  auto req = make_product_request("556e");
  auto fields = req.form_fields();
  fields[3].second = "google";  // _build must be "amazon"
  req.set_form_fields(fields);
  EXPECT_FALSE(sig.match(req).has_value());
}

TEST(TransactionSignature, SerializationRoundTrip) {
  const auto sig = make_product_signature();
  ByteWriter w;
  sig.serialize(w);
  ByteReader r(w.data());
  const auto back = TransactionSignature::deserialize(r);
  EXPECT_EQ(sig, back);
}

TEST(MatchFields, RepeatedNamesMatchPositionally) {
  std::vector<RequestField> fields{
      {FieldLocation::kBody, "_cap[]", pattern::FieldTemplate::literal("2"), false},
      {FieldLocation::kBody, "_cap[]", pattern::FieldTemplate::literal("4"), false},
  };
  Bindings bindings;
  EXPECT_TRUE(match_fields(fields, {{"_cap[]", "2"}, {"_cap[]", "4"}}, false, false, bindings));
  Bindings b2;
  EXPECT_FALSE(match_fields(fields, {{"_cap[]", "4"}, {"_cap[]", "2"}}, false, false, b2));
}

TEST(MatchFields, CrossFieldBindingConsistency) {
  std::vector<RequestField> fields{
      {FieldLocation::kBody, "a", pattern::FieldTemplate::hole("x"), false},
      {FieldLocation::kBody, "b", pattern::FieldTemplate::hole("x"), false},
  };
  Bindings consistent;
  EXPECT_TRUE(match_fields(fields, {{"a", "same"}, {"b", "same"}}, false, false, consistent));
  Bindings conflicting;
  EXPECT_FALSE(match_fields(fields, {{"a", "one"}, {"b", "two"}}, false, false, conflicting));
}

// --- SignatureSet --------------------------------------------------------------------

TEST(SignatureSet, AddAndLookup) {
  const auto set = make_wish_set();
  EXPECT_EQ(set.size(), 4u);
  const auto* feed = set.find_by_label("wish.feed");
  ASSERT_NE(feed, nullptr);
  EXPECT_EQ(&set.get(feed->id), feed);
  EXPECT_EQ(set.find("nope"), nullptr);
  EXPECT_THROW(set.get("nope"), NotFoundError);
}

TEST(SignatureSet, DuplicateIdRejected) {
  SignatureSet set;
  set.add(make_feed_signature());
  EXPECT_THROW(set.add(make_feed_signature()), InvalidArgumentError);
}

TEST(SignatureSet, EdgeValidation) {
  SignatureSet set;
  const auto& feed = set.add(make_feed_signature());
  EXPECT_THROW(set.add_edge({feed.id, "a.b", "missing", "h"}), InvalidArgumentError);
  EXPECT_THROW(set.add_edge({"missing", "a.b", feed.id, "h"}), InvalidArgumentError);
  const auto& product = set.add(make_product_signature());
  EXPECT_THROW(set.add_edge({feed.id, "bad..path", product.id, "h"}), ParseError);
}

TEST(SignatureSet, SuccessorPredecessorClassification) {
  const auto set = make_wish_set();
  const auto* feed = set.find_by_label("wish.feed");
  const auto* product = set.find_by_label("wish.product");
  const auto* image = set.find_by_label("wish.image");
  const auto* related = set.find_by_label("wish.related");

  EXPECT_TRUE(set.is_predecessor(feed->id));
  EXPECT_FALSE(set.is_successor(feed->id));
  // product is both (fed by feed, feeds related).
  EXPECT_TRUE(set.is_successor(product->id));
  EXPECT_TRUE(set.is_predecessor(product->id));
  EXPECT_TRUE(set.is_successor(image->id));
  EXPECT_FALSE(set.is_predecessor(image->id));
  EXPECT_TRUE(set.is_successor(related->id));

  EXPECT_EQ(set.prefetchable().size(), 3u);  // product, image, related
}

TEST(SignatureSet, RuntimeVsDependencyHoles) {
  const auto set = make_wish_set();
  const auto* product = set.find_by_label("wish.product");
  const auto dep = set.dependency_holes(product->id);
  ASSERT_EQ(dep.size(), 1u);
  EXPECT_EQ(dep[0], "wish.product.cid");
  const auto rt = set.runtime_holes(product->id);
  // host, cookie, ua, client, ver, credit
  EXPECT_EQ(rt.size(), 6u);
}

TEST(SignatureSet, MaxChainLength) {
  const auto set = make_wish_set();
  // feed -> product -> related : 2 edges.
  EXPECT_EQ(set.max_chain_length(), 2u);
}

TEST(SignatureSet, MaxChainLengthEmpty) {
  SignatureSet set;
  EXPECT_EQ(set.max_chain_length(), 0u);
}

TEST(SignatureSet, MatchRequestFindsRightSignature) {
  const auto set = make_wish_set();
  const auto* sig = set.match_request(make_feed_request());
  ASSERT_NE(sig, nullptr);
  EXPECT_EQ(sig->label, "wish.feed");
  const auto* product = set.match_request(make_product_request("1"));
  ASSERT_NE(product, nullptr);
  EXPECT_EQ(product->label, "wish.product");

  http::Request unknown;
  unknown.uri = http::Uri::parse("https://elsewhere.com/nothing");
  EXPECT_EQ(set.match_request(unknown), nullptr);
}

TEST(SignatureSet, MatchRequestFiltersByApp) {
  const auto set = make_wish_set();
  EXPECT_NE(set.match_request(make_feed_request(), "com.wish.test"), nullptr);
  EXPECT_EQ(set.match_request(make_feed_request(), "com.other.app"), nullptr);
}

TEST(SignatureSet, SubsetForApp) {
  auto set = make_wish_set();
  TransactionSignature other;
  other.app = "com.other.app";
  other.label = "other.x";
  other.request.host = pattern::FieldTemplate::literal("o.com");
  other.request.path = pattern::FieldTemplate::literal("/z");
  set.add(other);

  const auto subset = set.subset_for_app("com.wish.test");
  EXPECT_EQ(subset.size(), 4u);
  EXPECT_EQ(subset.edges().size(), 3u);
  EXPECT_EQ(subset.find_by_label("other.x"), nullptr);
}

TEST(SignatureSet, SerializationRoundTrip) {
  const auto set = make_wish_set();
  const auto bytes = set.serialize();
  const auto back = SignatureSet::deserialize(bytes);
  EXPECT_EQ(back.size(), set.size());
  EXPECT_EQ(back.edges().size(), set.edges().size());
  for (const auto& sig : set.all()) {
    const auto* restored = back.find(sig->id);
    ASSERT_NE(restored, nullptr);
    EXPECT_EQ(*restored, *sig);
  }
}

TEST(SignatureSet, DeserializeRejectsGarbage) {
  std::vector<std::uint8_t> garbage{1, 2, 3, 4, 5, 6, 7, 8};
  EXPECT_THROW(SignatureSet::deserialize(garbage), ParseError);
}

// --- SignatureIndex (dispatch fast path) -------------------------------------------

TEST(SignatureIndex, KeyExtractsMethodAndLiteralPrefixes) {
  const auto key = SignatureIndex::key_for(testfix::make_product_signature());
  EXPECT_EQ(key.method, "POST");
  EXPECT_EQ(key.path_prefix, "/product/get");
  EXPECT_EQ(key.host_prefix, "");  // host is a hole: no literal prefix
}

TEST(SignatureIndex, AgreesWithLinearScanOnWishFixture) {
  const auto set = testfix::make_wish_set();
  std::vector<http::Request> probes{testfix::make_feed_request(),
                                    testfix::make_product_request("1"),
                                    testfix::make_product_request("2", /*with_credit=*/true)};
  http::Request unknown;
  unknown.uri = http::Uri::parse("https://elsewhere.com/nothing");
  probes.push_back(unknown);
  http::Request wrong_method = testfix::make_feed_request();
  wrong_method.method = "DELETE";
  probes.push_back(wrong_method);

  for (const http::Request& req : probes) {
    EXPECT_EQ(set.match_request(req), set.match_request_linear(req)) << req.uri.path;
    EXPECT_EQ(set.match_request(req, "com.wish.test"),
              set.match_request_linear(req, "com.wish.test"))
        << req.uri.path;
    EXPECT_EQ(set.match_request(req, "com.other.app"),
              set.match_request_linear(req, "com.other.app"))
        << req.uri.path;
  }
}

TEST(SignatureIndex, PrunesCandidatesByMethodAndPath) {
  const auto set = testfix::make_wish_set();
  // The product request is POST /product/get: of the four signatures only
  // wish.product (POST, "/product/get") survives the prefilter — wish.related
  // is POST too but parks under "/related/get".
  const auto candidates = set.index().candidates(testfix::make_product_request("1"));
  ASSERT_EQ(candidates.size(), 1u);
  EXPECT_EQ(candidates[0]->label, "wish.product");
  // An alien path reaches no trie node with entries.
  http::Request unknown;
  unknown.method = "POST";
  unknown.uri = http::Uri::parse("https://wish.com/unrelated");
  EXPECT_TRUE(set.index().candidates(unknown).empty());
}

TEST(SignatureIndex, RebuiltAfterAdd) {
  auto set = testfix::make_wish_set();
  http::Request req;
  req.method = "GET";
  req.uri = http::Uri::parse("https://wish.com/new/endpoint");
  EXPECT_EQ(set.match_request(req), nullptr);  // builds the index

  TransactionSignature late;
  late.app = "com.wish.test";
  late.label = "wish.late";
  late.request.method = "GET";
  late.request.scheme = pattern::FieldTemplate::literal("https");
  late.request.host = pattern::FieldTemplate::hole("h");
  late.request.path = pattern::FieldTemplate::literal("/new/endpoint");
  set.add(late);

  const auto* found = set.match_request(req);  // index must cover the new signature
  ASSERT_NE(found, nullptr);
  EXPECT_EQ(found->label, "wish.late");
}

TEST(SignatureIndex, FirstMatchOrderPreservedAmongOverlaps) {
  // Two signatures that both match the same request: the index must return
  // the earlier-inserted one, exactly like the linear scan.
  SignatureSet set;
  TransactionSignature wide;
  wide.app = "a";
  wide.label = "wide";
  wide.request.method = "GET";
  wide.request.scheme = pattern::FieldTemplate::literal("https");
  wide.request.host = pattern::FieldTemplate::hole("h");
  wide.request.path = pattern::FieldTemplate::parse("/api/{rest}");
  set.add(wide);
  TransactionSignature narrow;
  narrow.app = "a";
  narrow.label = "narrow";
  narrow.request.method = "GET";
  narrow.request.scheme = pattern::FieldTemplate::literal("https");
  narrow.request.host = pattern::FieldTemplate::hole("h");
  narrow.request.path = pattern::FieldTemplate::literal("/api/feed");
  set.add(narrow);

  http::Request req;
  req.method = "GET";
  req.uri = http::Uri::parse("https://x.example/api/feed");
  const auto* indexed = set.match_request(req);
  const auto* linear = set.match_request_linear(req);
  ASSERT_NE(indexed, nullptr);
  EXPECT_EQ(indexed, linear);
  EXPECT_EQ(indexed->label, "wide");
}

TEST(SignatureIndex, RandomizedAgreementWithLinearScan) {
  const auto set = testfix::make_wish_set();
  Rng rng(7);
  const char* methods[] = {"GET", "POST", "DELETE"};
  const char* paths[] = {"/api/get-feed", "/product/get",  "/img",    "/related/get",
                         "/api/get-fee",  "/product/getx", "/imgoo",  "/",
                         "",              "/api",          "/related"};
  for (int round = 0; round < 500; ++round) {
    http::Request req;
    req.method = methods[rng.index(3)];
    std::string path(paths[rng.index(11)]);
    if (rng.chance(0.2)) path += "/extra";
    req.uri = http::Uri::parse("https://wish.com" + path + "?offset=0&count=30");
    if (rng.chance(0.5)) {
      req.headers.set("Cookie", "c");
      req.headers.set("User-Agent", "ua");
    }
    ASSERT_EQ(set.match_request(req), set.match_request_linear(req))
        << req.method << " " << req.uri.path;
  }
}

}  // namespace
}  // namespace appx::core
