// Tests for the Monkey-style UI fuzzer (§4.3, §6.1).
#include <gtest/gtest.h>

#include "apps/catalog.hpp"
#include "apps/server.hpp"
#include "fuzz/fuzzer.hpp"
#include "util/error.hpp"

namespace appx::fuzz {
namespace {

class FuzzTest : public ::testing::Test {
 protected:
  FuzzTest() : app_(apps::make_wish()), server_(&app_) {}

  apps::AppClient make_client() {
    return apps::AppClient(&app_, apps::ClientEnv::for_user(app_, "monkey"), &sim_,
                           [this](http::Request req, std::function<void(http::Response)> cb) {
                             ++requests_;
                             labels_.insert(req.uri.path);
                             const auto resp = server_.serve(req);
                             sim_.schedule(milliseconds(20), [cb, resp] { cb(resp); });
                           });
  }

  sim::Simulator sim_;
  apps::AppSpec app_;
  apps::OriginServer server_;
  std::size_t requests_ = 0;
  std::set<std::string> labels_;
};

TEST_F(FuzzTest, SessionRunsForConfiguredDuration) {
  auto client = make_client();
  FuzzParams params;
  params.duration = minutes(2);
  params.event_interval = milliseconds(500);
  Fuzzer fuzzer(&client, &sim_, params);
  bool finished = false;
  FuzzStats final_stats;
  fuzzer.start([&](const FuzzStats& s) {
    finished = true;
    final_stats = s;
  });
  sim_.run();
  EXPECT_TRUE(finished);
  // ~240 events at 500 ms over 2 minutes.
  EXPECT_NEAR(static_cast<double>(final_stats.events), 240.0, 5.0);
  EXPECT_GT(final_stats.interactions_started, 1u);
  EXPECT_GT(requests_, 10u);
}

TEST_F(FuzzTest, LaunchHappensFirst) {
  auto client = make_client();
  FuzzParams params;
  params.duration = seconds(10);
  Fuzzer fuzzer(&client, &sim_, params);
  fuzzer.start();
  sim_.run();
  EXPECT_TRUE(fuzzer.stats().interactions_covered.contains(apps::kLaunchInteraction));
  EXPECT_TRUE(labels_.contains("/api/get-feed"));
}

TEST_F(FuzzTest, DeterministicForSameSeed) {
  std::vector<std::size_t> counts;
  for (int round = 0; round < 2; ++round) {
    sim::Simulator sim;
    apps::OriginServer server(&app_);
    std::size_t requests = 0;
    apps::AppClient client(&app_, apps::ClientEnv::for_user(app_, "monkey"), &sim,
                           [&](http::Request req, std::function<void(http::Response)> cb) {
                             ++requests;
                             const auto resp = server.serve(req);
                             sim.schedule(milliseconds(20), [cb, resp] { cb(resp); });
                           });
    FuzzParams params;
    params.duration = minutes(3);
    params.seed = 99;
    Fuzzer fuzzer(&client, &sim, params);
    fuzzer.start();
    sim.run();
    counts.push_back(requests);
  }
  EXPECT_EQ(counts[0], counts[1]);
}

TEST_F(FuzzTest, LongSessionCoversUiButNotBackground) {
  auto client = make_client();
  FuzzParams params;
  params.duration = minutes(60);
  Fuzzer fuzzer(&client, &sim_, params);
  fuzzer.start();
  sim_.run();
  const auto& covered = fuzzer.stats().interactions_covered;
  // An hour of events reaches the main interaction and the merchant chain...
  EXPECT_TRUE(covered.contains(apps::kMainInteraction));
  EXPECT_TRUE(covered.contains(apps::kMerchantInteraction));
  // ...but never the background sync (Monkey cannot trigger push/periodic
  // work) — the Table 3 coverage gap.
  EXPECT_FALSE(covered.contains("background_sync"));
  for (const std::string& name : covered) {
    EXPECT_EQ(app_.interaction(name).trigger, apps::Interaction::Trigger::kUi) << name;
  }
}

TEST_F(FuzzTest, EventsWhileBusyAreDropped) {
  auto client = make_client();
  FuzzParams params;
  params.duration = minutes(5);
  params.event_interval = milliseconds(100);  // much faster than interactions
  Fuzzer fuzzer(&client, &sim_, params);
  fuzzer.start();
  sim_.run();
  EXPECT_GT(fuzzer.stats().events_while_busy, 0u);
}

TEST(Fuzzer, RejectsNullArguments) {
  sim::Simulator sim;
  EXPECT_THROW(Fuzzer(nullptr, &sim, FuzzParams{}), InvalidArgumentError);
}

}  // namespace
}  // namespace appx::fuzz
