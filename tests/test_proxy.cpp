// Unit tests for the prefetch cache, scheduler and proxy engine (Fig. 10).
#include <gtest/gtest.h>

#include <algorithm>

#include "core/cache.hpp"
#include "core/proxy.hpp"
#include "core/scheduler.hpp"
#include "wish_fixture.hpp"

namespace appx::core {
namespace {

using testfix::make_feed_request;
using testfix::make_feed_response;
using testfix::make_product_request;
using testfix::make_product_response;
using testfix::make_wish_set;

// --- PrefetchCache ---------------------------------------------------------------

TEST(PrefetchCache, HitMissExpiry) {
  PrefetchCache cache;
  PrefetchCache::Lookup lookup;

  EXPECT_EQ(cache.get("k", 0, &lookup), nullptr);
  EXPECT_EQ(lookup, PrefetchCache::Lookup::kMiss);

  PrefetchCache::Entry entry;
  entry.set_response([] {
    http::Response r;
    r.body = "data";
    return r;
  }());
  entry.fetched_at = 0;
  entry.expires_at = 100;
  cache.put("k", entry);

  EXPECT_NE(cache.get("k", 50, &lookup), nullptr);
  EXPECT_EQ(lookup, PrefetchCache::Lookup::kHit);

  EXPECT_EQ(cache.get("k", 100, &lookup), nullptr);
  EXPECT_EQ(lookup, PrefetchCache::Lookup::kExpired);
  // The expired entry is gone: a second lookup is a plain miss.
  EXPECT_EQ(cache.get("k", 100, &lookup), nullptr);
  EXPECT_EQ(lookup, PrefetchCache::Lookup::kMiss);
}

TEST(PrefetchCache, NoExpiryEntryLivesForever) {
  PrefetchCache cache;
  PrefetchCache::Entry entry;
  cache.put("k", entry);
  EXPECT_NE(cache.get("k", 1'000'000'000'000), nullptr);
}

TEST(PrefetchCache, ContainsRespectsExpiry) {
  PrefetchCache cache;
  PrefetchCache::Entry entry;
  entry.expires_at = 10;
  cache.put("k", entry);
  EXPECT_TRUE(cache.contains("k", 5));
  EXPECT_FALSE(cache.contains("k", 10));
  EXPECT_FALSE(cache.contains("other", 5));
}

TEST(PrefetchCache, UsedCountsUniqueEntries) {
  PrefetchCache cache;
  cache.put("a", {});
  cache.put("b", {});
  EXPECT_EQ(cache.entries_used(), 0u);
  cache.get("a", 0);
  cache.get("a", 0);
  EXPECT_EQ(cache.entries_used(), 1u);
  cache.get("b", 0);
  EXPECT_EQ(cache.entries_used(), 2u);
  EXPECT_EQ(cache.entries_inserted(), 2u);
}

TEST(PrefetchCache, PutOverwrites) {
  PrefetchCache cache;
  PrefetchCache::Entry e1;
  e1.set_response([] {
    http::Response r;
    r.body = "old";
    return r;
  }());
  cache.put("k", e1);
  PrefetchCache::Entry e2;
  e2.set_response([] {
    http::Response r;
    r.body = "new";
    return r;
  }());
  cache.put("k", e2);
  EXPECT_EQ(cache.size(), 1u);
  EXPECT_EQ(cache.get("k", 0)->body, "new");
}

PrefetchCache::Entry sized_entry(std::size_t body_bytes, std::optional<SimTime> expires_at = {}) {
  PrefetchCache::Entry entry;
  http::Response r;
  r.body = std::string(body_bytes, 'x');
  entry.set_response(std::move(r));
  entry.expires_at = expires_at;
  return entry;
}

TEST(PrefetchCache, LruEvictionOrder) {
  PrefetchCache cache(PrefetchCache::Limits{3, 0});
  cache.put("a", {}, 0);
  cache.put("b", {}, 1);
  cache.put("c", {}, 2);
  // Touch "a": it becomes most-recently-used, leaving "b" as the LRU tail.
  EXPECT_NE(cache.get("a", 3), nullptr);
  cache.put("d", {}, 4);
  EXPECT_EQ(cache.size(), 3u);
  EXPECT_FALSE(cache.contains("b", 5));
  EXPECT_TRUE(cache.contains("a", 5));
  EXPECT_TRUE(cache.contains("c", 5));
  EXPECT_TRUE(cache.contains("d", 5));
  EXPECT_EQ(cache.evicted_lru(), 1u);
  EXPECT_EQ(cache.evicted_expired(), 0u);
}

TEST(PrefetchCache, ByteBoundEviction) {
  const Bytes limit = 4096;
  PrefetchCache cache(PrefetchCache::Limits{0, limit});
  for (int i = 0; i < 16; ++i) {
    cache.put("k" + std::to_string(i), sized_entry(1024), i);
    EXPECT_LE(cache.bytes(), limit);
  }
  EXPECT_GT(cache.evicted_lru(), 0u);
  EXPECT_LT(cache.size(), 16u);
  // The most recent insert always survives.
  EXPECT_TRUE(cache.contains("k15", 100));
}

TEST(PrefetchCache, ExpiredEntriesReapedBeforeLiveOnes) {
  PrefetchCache cache(PrefetchCache::Limits{2, 0});
  cache.put("dead", sized_entry(8, 10), 0);  // expires at t=10
  cache.put("live", sized_entry(8), 1);
  // Insert at t=20: "dead" has expired; the limit is met by reaping it, so
  // the still-live LRU entry survives.
  cache.put("fresh", sized_entry(8), 20);
  EXPECT_TRUE(cache.contains("live", 21));
  EXPECT_TRUE(cache.contains("fresh", 21));
  EXPECT_EQ(cache.evicted_expired(), 1u);
  EXPECT_EQ(cache.evicted_lru(), 0u);
}

TEST(PrefetchCache, ErasingContainsDropsExpiredEntry) {
  PrefetchCache cache;
  cache.put("k", sized_entry(64, 10), 0);
  EXPECT_GT(cache.bytes(), 0);
  // Mutable contains behaves like get: the expired entry is erased on sight,
  // so byte accounting cannot be distorted by dead entries.
  EXPECT_FALSE(cache.contains("k", 10));
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_EQ(cache.bytes(), 0);
  EXPECT_EQ(cache.evicted_expired(), 1u);
}

TEST(PrefetchCache, SweepDropsAllExpired) {
  PrefetchCache cache;
  cache.put("e1", sized_entry(8, 10), 0);
  cache.put("e2", sized_entry(8, 20), 0);
  cache.put("live", sized_entry(8), 0);
  EXPECT_EQ(cache.sweep(15), 1u);
  EXPECT_EQ(cache.sweep(25), 1u);
  EXPECT_EQ(cache.size(), 1u);
  EXPECT_EQ(cache.evicted_expired(), 2u);
}

TEST(PrefetchCache, TighteningLimitsEvictsImmediately) {
  PrefetchCache cache;
  for (int i = 0; i < 8; ++i) cache.put("k" + std::to_string(i), {}, i);
  cache.set_limits(PrefetchCache::Limits{2, 0});
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_EQ(cache.evicted_lru(), 6u);
}

TEST(PrefetchCache, EvictionCountersRouteToSinks) {
  std::size_t lru = 0, expired = 0;
  PrefetchCache cache(PrefetchCache::Limits{1, 0});
  cache.set_eviction_counters(&lru, &expired);
  cache.put("a", sized_entry(8), 0);
  cache.put("b", sized_entry(8, 15), 0);  // evicts "a" (LRU)
  EXPECT_EQ(lru, 1u);
  cache.put("c", sized_entry(8), 20);  // "b" expired at t=15: reaped, not LRU'd
  EXPECT_EQ(expired, 1u);
  EXPECT_EQ(lru, 1u);
}

// --- scheduler ------------------------------------------------------------------

TEST(SignatureStats, Defaults) {
  SignatureStats stats;
  EXPECT_DOUBLE_EQ(stats.avg_response_time_ms("x"), 0.0);
  EXPECT_DOUBLE_EQ(stats.hit_rate("x"), 0.5);
}

TEST(SignatureStats, Updates) {
  SignatureStats stats;
  stats.record_response_time("x", 100);
  EXPECT_DOUBLE_EQ(stats.avg_response_time_ms("x"), 100);
  stats.record_lookup("x", true);
  stats.record_lookup("x", false);
  EXPECT_DOUBLE_EQ(stats.hit_rate("x"), 0.5);  // (1+1)/(2+2)
  stats.record_lookup("x", true);
  EXPECT_GT(stats.hit_rate("x"), 0.5);
}

TEST(PrefetchScheduler, PriorityOrdering) {
  SignatureStats stats;
  stats.record_response_time("slow", 500);
  stats.record_response_time("fast", 10);

  PrefetchScheduler sched;
  PrefetchJob a;
  a.sig_id = "fast";
  PrefetchJob b;
  b.sig_id = "slow";
  sched.enqueue(a, stats);
  sched.enqueue(b, stats);

  // Slow-to-complete signature dequeues first (paper §5).
  const auto first = sched.dequeue();
  ASSERT_TRUE(first.has_value());
  EXPECT_EQ(first->sig_id, "slow");
  EXPECT_EQ(sched.dequeue()->sig_id, "fast");
}

TEST(PrefetchScheduler, HitRateBreaksTies) {
  SignatureStats stats;
  stats.record_response_time("a", 100);
  stats.record_response_time("b", 100);
  for (int i = 0; i < 20; ++i) {
    stats.record_lookup("a", true);
    stats.record_lookup("b", false);
  }
  PrefetchScheduler sched;
  PrefetchJob ja;
  ja.sig_id = "a";
  PrefetchJob jb;
  jb.sig_id = "b";
  sched.enqueue(jb, stats);
  sched.enqueue(ja, stats);
  EXPECT_EQ(sched.dequeue()->sig_id, "a");
}

TEST(PrefetchScheduler, FifoAmongEqualPriorities) {
  SignatureStats stats;
  PrefetchScheduler sched;
  for (int i = 0; i < 3; ++i) {
    PrefetchJob j;
    j.sig_id = "same";
    j.request.body = std::to_string(i);
    sched.enqueue(j, stats);
  }
  EXPECT_EQ(sched.dequeue()->request.body, "0");
  EXPECT_EQ(sched.dequeue()->request.body, "1");
  EXPECT_EQ(sched.dequeue()->request.body, "2");
}

TEST(PrefetchScheduler, OutstandingWindowLimitsDequeue) {
  SignatureStats stats;
  PrefetchScheduler sched(PrefetchScheduler::Weights{1.0, 200.0}, 2);
  for (int i = 0; i < 5; ++i) sched.enqueue(PrefetchJob{}, stats);
  EXPECT_TRUE(sched.dequeue().has_value());
  EXPECT_TRUE(sched.dequeue().has_value());
  EXPECT_FALSE(sched.dequeue().has_value());  // window full
  EXPECT_EQ(sched.outstanding(), 2u);
  sched.on_completed();
  EXPECT_TRUE(sched.dequeue().has_value());
  EXPECT_EQ(sched.queued(), 2u);
}

TEST(PrefetchScheduler, OnDroppedReleasesWindowSlot) {
  SignatureStats stats;
  PrefetchScheduler sched(PrefetchScheduler::Weights{1.0, 200.0}, 2);
  for (int i = 0; i < 4; ++i) sched.enqueue(PrefetchJob{}, stats);
  ASSERT_TRUE(sched.dequeue().has_value());
  ASSERT_TRUE(sched.dequeue().has_value());
  ASSERT_FALSE(sched.dequeue().has_value());  // window full
  sched.on_dropped();
  EXPECT_EQ(sched.dropped(), 1u);
  // The dropped job's slot is free again; the leak would have kept the
  // window full forever.
  EXPECT_TRUE(sched.dequeue().has_value());
  sched.on_completed();
  EXPECT_EQ(sched.completed(), 1u);
  EXPECT_EQ(sched.outstanding(), 1u);
}

TEST(PrefetchScheduler, DropAndCompleteBalanceDequeues) {
  SignatureStats stats;
  PrefetchScheduler sched(PrefetchScheduler::Weights{1.0, 200.0}, 4);
  std::size_t dequeued = 0;
  for (int round = 0; round < 50; ++round) {
    for (int i = 0; i < 3; ++i) sched.enqueue(PrefetchJob{}, stats);
    while (sched.dequeue()) {
      ++dequeued;
      // Alternate resolutions; every job resolved exactly once.
      if (dequeued % 2 == 0) {
        sched.on_completed();
      } else {
        sched.on_dropped();
      }
    }
  }
  EXPECT_EQ(dequeued, 150u);
  EXPECT_EQ(sched.completed() + sched.dropped(), dequeued);
  EXPECT_EQ(sched.outstanding(), 0u);
}

TEST(PrefetchScheduler, BoundedQueueEvictsLowestPriority) {
  SignatureStats stats;
  stats.record_response_time("high", 500);
  stats.record_response_time("mid", 100);
  stats.record_response_time("low", 1);
  PrefetchScheduler sched(PrefetchScheduler::Weights{1.0, 0.0}, 32, /*max_queued=*/2);

  PrefetchJob high;
  high.sig_id = "high";
  PrefetchJob mid;
  mid.sig_id = "mid";
  PrefetchJob low;
  low.sig_id = "low";

  EXPECT_FALSE(sched.enqueue(low, stats).has_value());
  EXPECT_FALSE(sched.enqueue(high, stats).has_value());
  // Third job overflows: the LOWEST-priority queued job goes, not the oldest.
  const auto evicted = sched.enqueue(mid, stats);
  ASSERT_TRUE(evicted.has_value());
  EXPECT_EQ(evicted->sig_id, "low");
  EXPECT_EQ(sched.queued(), 2u);
  EXPECT_EQ(sched.dequeue()->sig_id, "high");
  EXPECT_EQ(sched.dequeue()->sig_id, "mid");
}

TEST(PrefetchScheduler, BoundedQueueBouncesIncomingLowJob) {
  SignatureStats stats;
  stats.record_response_time("high", 500);
  stats.record_response_time("low", 1);
  PrefetchScheduler sched(PrefetchScheduler::Weights{1.0, 0.0}, 32, /*max_queued=*/1);

  PrefetchJob high;
  high.sig_id = "high";
  EXPECT_FALSE(sched.enqueue(high, stats).has_value());
  // An incoming job that is itself the lowest priority bounces straight out.
  PrefetchJob low;
  low.sig_id = "low";
  const auto evicted = sched.enqueue(low, stats);
  ASSERT_TRUE(evicted.has_value());
  EXPECT_EQ(evicted->sig_id, "low");
  EXPECT_EQ(sched.dequeue()->sig_id, "high");
}

TEST(PrefetchScheduler, BoundedQueueEvictsNewestAmongEqualPriorities) {
  // Equal priorities dequeue FIFO, so the victim must be the NEWEST equal
  // job — evicting the oldest would starve the front of the FIFO run.
  SignatureStats stats;
  PrefetchScheduler sched(PrefetchScheduler::Weights{1.0, 0.0}, 32, /*max_queued=*/2);
  for (int i = 0; i < 3; ++i) {
    PrefetchJob j;
    j.sig_id = "same";
    j.request.body = std::to_string(i);
    const auto evicted = sched.enqueue(j, stats);
    EXPECT_EQ(evicted.has_value(), i == 2);
    if (evicted) EXPECT_EQ(evicted->request.body, "2");
  }
  EXPECT_EQ(sched.dequeue()->request.body, "0");
  EXPECT_EQ(sched.dequeue()->request.body, "1");
}

TEST(PrefetchScheduler, BoundedQueueKeepsResolutionInvariant) {
  // Every dequeued job resolves exactly once even under overflow eviction:
  // completed + dropped == dequeued, and evicted jobs were never dequeued.
  SignatureStats stats;
  PrefetchScheduler sched(PrefetchScheduler::Weights{1.0, 200.0}, 2, /*max_queued=*/3);
  std::size_t dequeued = 0;
  std::size_t evicted = 0;
  for (int round = 0; round < 40; ++round) {
    for (int i = 0; i < 5; ++i) {
      if (sched.enqueue(PrefetchJob{}, stats).has_value()) ++evicted;
    }
    while (sched.dequeue()) {
      ++dequeued;
      if (dequeued % 3 == 0) {
        sched.on_dropped();
      } else {
        sched.on_completed();
      }
    }
  }
  EXPECT_GT(evicted, 0u);
  EXPECT_EQ(sched.completed() + sched.dropped(), dequeued);
  EXPECT_EQ(sched.outstanding(), 0u);
}

// --- PrefetchCache usage hooks ---------------------------------------------------

PrefetchCache::Entry sized_entry(const std::string& sig, Bytes payload) {
  PrefetchCache::Entry entry;
  http::Response r;
  r.opaque_payload = payload;
  entry.set_response(std::move(r));
  entry.sig_id = sig;
  return entry;
}

struct HookLog {
  std::vector<std::string> first_use;
  std::vector<std::string> wasted;
  PrefetchCache::UsageHooks hooks() {
    return {[this](std::string_view sig, Bytes) { first_use.emplace_back(sig); },
            [this](std::string_view sig, Bytes) { wasted.emplace_back(sig); }};
  }
};

TEST(PrefetchCacheHooks, FirstUseFiresOncePerEntry) {
  HookLog log;  // must outlive the cache: the wasted hook fires from ~PrefetchCache
  PrefetchCache cache;
  cache.set_usage_hooks(log.hooks());
  cache.put("k", sized_entry("sig", 100));
  EXPECT_NE(cache.get("k", 0), nullptr);
  EXPECT_NE(cache.get("k", 0), nullptr);  // second hit: no second first_use
  ASSERT_EQ(log.first_use.size(), 1u);
  EXPECT_EQ(log.first_use[0], "sig");
  EXPECT_TRUE(log.wasted.empty());
}

TEST(PrefetchCacheHooks, WastedFiresOnLruEvictionOfUnusedEntry) {
  PrefetchCache::Limits limits;
  limits.max_entries = 1;
  HookLog log;  // must outlive the cache: the wasted hook fires from ~PrefetchCache
  PrefetchCache cache(limits);
  cache.set_usage_hooks(log.hooks());
  cache.put("a", sized_entry("sa", 100));
  cache.put("b", sized_entry("sb", 100));  // evicts unused "a"
  ASSERT_EQ(log.wasted.size(), 1u);
  EXPECT_EQ(log.wasted[0], "sa");

  // A USED entry leaving the cache is not waste.
  EXPECT_NE(cache.get("b", 0), nullptr);
  cache.put("c", sized_entry("sc", 100));
  EXPECT_EQ(log.wasted.size(), 1u);
}

TEST(PrefetchCacheHooks, WastedFiresOnExpiryAndOverwrite) {
  HookLog log;  // must outlive the cache: the wasted hook fires from ~PrefetchCache
  PrefetchCache cache;
  cache.set_usage_hooks(log.hooks());

  auto expiring = sized_entry("exp", 100);
  expiring.expires_at = 10;
  cache.put("e", expiring);
  EXPECT_EQ(cache.get("e", 20), nullptr);  // expired unused -> wasted
  ASSERT_EQ(log.wasted.size(), 1u);
  EXPECT_EQ(log.wasted[0], "exp");

  cache.put("o", sized_entry("old", 100));
  cache.put("o", sized_entry("new", 100));  // overwrite before any use
  ASSERT_EQ(log.wasted.size(), 2u);
  EXPECT_EQ(log.wasted[1], "old");
}

TEST(PrefetchCacheHooks, DestructorWastesLiveUnusedEntriesOnly) {
  HookLog log;
  {
    PrefetchCache cache;
    cache.set_usage_hooks(log.hooks());
    cache.put("used", sized_entry("su", 100));
    cache.put("unused", sized_entry("sn", 100));
    EXPECT_NE(cache.get("used", 0), nullptr);
  }
  ASSERT_EQ(log.wasted.size(), 1u);
  EXPECT_EQ(log.wasted[0], "sn");
}

TEST(PrefetchCacheHooks, ClearDoesNotFireHooks) {
  HookLog log;  // must outlive the cache: the wasted hook fires from ~PrefetchCache
  PrefetchCache cache;
  cache.set_usage_hooks(log.hooks());
  cache.put("k", sized_entry("sig", 100));
  cache.clear();
  EXPECT_TRUE(log.wasted.empty());
}

TEST(PrefetchCache, UnusedBytesTracksLiveNeverUsedEntries) {
  PrefetchCache cache;
  EXPECT_EQ(cache.unused_bytes(), 0);
  cache.put("a", sized_entry("sa", 1000));
  cache.put("b", sized_entry("sb", 500));
  const Bytes both = cache.unused_bytes();
  EXPECT_GT(both, 0);
  // Serving one entry removes its bytes from the unused tally.
  EXPECT_NE(cache.get("a", 0), nullptr);
  EXPECT_LT(cache.unused_bytes(), both);
  EXPECT_GT(cache.unused_bytes(), 0);
  EXPECT_NE(cache.get("b", 0), nullptr);
  EXPECT_EQ(cache.unused_bytes(), 0);
}

// --- ProxyEngine -----------------------------------------------------------------

class ProxyTest : public ::testing::Test {
 protected:
  ProxyTest() : set_(make_wish_set()) {
    config_.default_expiration = seconds(3600);
    engine_ = std::make_unique<ProxyEngine>(&set_, &config_, 7);
  }

  // Runtime caps are snapshotted into EngineOptions at construction; tests
  // that tighten them must rebuild the engine for the change to apply.
  void remake_engine() { engine_ = std::make_unique<ProxyEngine>(&set_, &config_, 7); }

  // Drive a full transaction through the proxy as a front end would:
  // client request -> (cache | origin) -> prefetch jobs -> prefetch responses.
  http::Response run_transaction(const std::string& user, const http::Request& req,
                                 const http::Response& origin_response, SimTime now,
                                 bool* served_from_cache = nullptr) {
    Session session = engine_->session(user, now);
    Decision d = session.on_request(req, now);
    if (served_from_cache != nullptr) *served_from_cache = d.served != nullptr;
    std::vector<PrefetchJob> jobs = std::move(d.prefetches);
    http::Response result = origin_response;
    if (d.served) {
      result = *d.served;
    } else {
      Decision r = session.on_response(req, origin_response, now);
      for (auto& job : r.prefetches) jobs.push_back(std::move(job));
    }
    answer_prefetches(session, std::move(jobs), now);
    return result;
  }

  // Answer prefetch jobs from a canned origin, following up on jobs the
  // responses themselves surface (chained prefetching) until quiescent.
  void answer_prefetches(Session& session, std::vector<PrefetchJob> jobs, SimTime now) {
    while (!jobs.empty()) {
      std::vector<PrefetchJob> next;
      for (const auto& job : jobs) {
        http::Response resp;
        if (job.request.uri.path == "/product/get") {
          // Deterministic per-item merchant, like a real origin would return.
          const auto fields = job.request.form_fields();
          resp = make_product_response("m_" + fields[0].second, 1500);
        } else if (job.request.uri.path == "/img") {
          resp.opaque_payload = kilobytes(300);
        } else {
          resp.body = "{}";
        }
        Decision d = session.on_prefetch_response(job, resp, now, 165.0);
        for (auto& follow : d.prefetches) next.push_back(std::move(follow));
      }
      // Freed outstanding-window slots may release queued jobs.
      for (auto& job : session.take_prefetches(now)) next.push_back(std::move(job));
      jobs = std::move(next);
    }
  }

  void drain_prefetches(const std::string& user, SimTime now) {
    Session session = engine_->session(user, now);
    answer_prefetches(session, session.take_prefetches(now), now);
  }

  SignatureSet set_;
  ProxyConfig config_;
  std::unique_ptr<ProxyEngine> engine_;
};

TEST_F(ProxyTest, EndToEndPrefetchServesSecondInteraction) {
  // 1. Feed: forwarded (nothing cached yet), learning sees the ids.
  run_transaction("u1", make_feed_request(), make_feed_response({"09cf", "3gf3"}), 0);
  // 2. First product request: miss (runtime values unknown before this), but
  //    it teaches the engine; sibling instances are prefetched.
  bool hit = false;
  run_transaction("u1", make_product_request("09cf"), make_product_response("Silk", 1), 1000,
                  &hit);
  EXPECT_FALSE(hit);
  // 3. Second product request: must be a cache hit.
  run_transaction("u1", make_product_request("3gf3"), make_product_response("Silk", 1), 2000,
                  &hit);
  EXPECT_TRUE(hit);
  EXPECT_EQ(engine_->stats().cache_hits, 1u);
  EXPECT_GT(engine_->stats().prefetches_issued, 0u);
}

TEST_F(ProxyTest, PrefetchedResponseIdenticalToOrigin) {
  run_transaction("u1", make_feed_request(), make_feed_response({"a", "b"}), 0);
  run_transaction("u1", make_product_request("a"), make_product_response("Silk", 1500), 1);
  bool hit = false;
  const auto resp = run_transaction("u1", make_product_request("b"),
                                    make_product_response("ignored", 0), 2, &hit);
  ASSERT_TRUE(hit);
  // Served body is the prefetched origin payload (canned per-item merchant).
  EXPECT_EQ(resp.body, make_product_response("m_b", 1500).body);
}

TEST_F(ProxyTest, ExpiredEntryIsMissAndRefetched) {
  config_.default_expiration = milliseconds(10);
  run_transaction("u1", make_feed_request(), make_feed_response({"a", "b"}), 0);
  run_transaction("u1", make_product_request("a"), make_product_response("m", 1), 1000);
  bool hit = true;
  run_transaction("u1", make_product_request("b"), make_product_response("m", 1),
                  seconds(10), &hit);
  EXPECT_FALSE(hit);
  EXPECT_EQ(engine_->stats().cache_expired, 1u);
}

TEST_F(ProxyTest, UsersAreIsolated) {
  run_transaction("u1", make_feed_request(), make_feed_response({"a", "b"}), 0);
  run_transaction("u1", make_product_request("a"), make_product_response("m", 1), 1);
  // u2 never saw anything: its identical request must NOT be served from
  // u1's cache.
  bool hit = true;
  run_transaction("u2", make_product_request("b"), make_product_response("m", 1), 2, &hit);
  EXPECT_FALSE(hit);
  EXPECT_EQ(engine_->user_count(), 2u);
}

TEST_F(ProxyTest, DisabledSignatureIsNotPrefetched) {
  const auto* product = set_.find_by_label("wish.product");
  SignaturePolicy p;
  p.hash = product->id;
  p.prefetch = false;
  config_.set_policy(p);

  run_transaction("u1", make_feed_request(), make_feed_response({"a", "b"}), 0);
  run_transaction("u1", make_product_request("a"), make_product_response("m", 1), 1);
  bool hit = true;
  run_transaction("u1", make_product_request("b"), make_product_response("m", 1), 2, &hit);
  EXPECT_FALSE(hit);
  EXPECT_GT(engine_->stats().skipped_disabled, 0u);
}

TEST_F(ProxyTest, ZeroProbabilityNeverPrefetches) {
  config_.global_probability = 0.0;
  run_transaction("u1", make_feed_request(), make_feed_response({"a", "b"}), 0);
  run_transaction("u1", make_product_request("a"), make_product_response("m", 1), 1);
  EXPECT_EQ(engine_->stats().prefetches_issued, 0u);
  EXPECT_GT(engine_->stats().skipped_probability, 0u);
}

TEST_F(ProxyTest, ConditionGatesPrefetch) {
  const auto* related = set_.find_by_label("wish.related");
  SignaturePolicy p;
  p.hash = related->id;
  p.conditions = {{"data.contest.price", FieldCondition::Op::kGt, "1000"}};
  config_.set_policy(p);

  // Teach the engine related's run-time values (host) with one observation.
  http::Request rel;
  rel.method = "POST";
  rel.uri = http::Uri::parse("https://wish.com/related/get");
  rel.set_form_fields({{"merchant", "Warmup"}});
  http::Response rel_resp;
  rel_resp.body = "{}";
  run_transaction("u1", rel, rel_resp, 0);

  // Product response with price 500: the ready related instance must be
  // rejected by the price condition.
  run_transaction("u1", make_product_request("a"), make_product_response("Cheap", 500), 1);
  EXPECT_GT(engine_->stats().skipped_condition, 0u);

  // Price above the threshold: prefetch proceeds.
  const auto issued_before = engine_->stats().prefetches_issued;
  run_transaction("u1", make_product_request("b"), make_product_response("Lux", 2000), 2);
  EXPECT_GT(engine_->stats().prefetches_issued, issued_before);
}

TEST_F(ProxyTest, DataBudgetStopsPrefetching) {
  config_.data_budget = 1;  // one byte: first prefetch response exhausts it
  std::vector<std::string> ids;
  for (int i = 0; i < 10; ++i) ids.push_back("id" + std::to_string(i));
  run_transaction("u1", make_feed_request(), make_feed_response(ids), 0);
  run_transaction("u1", make_product_request("id0"), make_product_response("m", 1), 1);
  run_transaction("u1", make_feed_request(), make_feed_response({"fresh1", "fresh2"}), 2);
  EXPECT_GT(engine_->stats().skipped_budget, 0u);
}

TEST_F(ProxyTest, AddedHeaderMarksPrefetchButStillMatchesClient) {
  const auto* product = set_.find_by_label("wish.product");
  SignaturePolicy p;
  p.hash = product->id;
  p.add_headers = {{"X-Appx", "prefetch"}};
  config_.set_policy(p);
  engine_ = std::make_unique<ProxyEngine>(&set_, &config_, 7);  // re-read header names

  run_transaction("u1", make_feed_request(), make_feed_response({"a", "b"}), 0);
  run_transaction("u1", make_product_request("a"), make_product_response("m", 1), 1);
  bool hit = false;
  run_transaction("u1", make_product_request("b"), make_product_response("m", 1), 2, &hit);
  EXPECT_TRUE(hit) << "prefetch-marker header must not break exact matching";
}

TEST_F(ProxyTest, ChainedPrefetchReachesSecondHop) {
  // Wish merchant-page chain (Fig. 3c): feed -> product -> related. After
  // the app has shown each transaction once (runtime values known), a new
  // feed item should trigger product prefetch, whose prefetched response
  // triggers related prefetch — without any client involvement.
  run_transaction("u1", make_feed_request(), make_feed_response({"seed"}), 0);
  run_transaction("u1", make_product_request("seed"), make_product_response("SeedStore", 1), 1);
  http::Request img;
  img.uri = http::Uri::parse("https://img.wish.com/img?cid=seed");
  http::Response img_resp;
  img_resp.opaque_payload = kilobytes(300);
  run_transaction("u1", img, img_resp, 1);
  http::Request rel;
  rel.method = "POST";
  rel.uri = http::Uri::parse("https://wish.com/related/get");
  rel.set_form_fields({{"merchant", "SeedStore"}});
  http::Response rel_resp;
  rel_resp.body = "{}";
  run_transaction("u1", rel, rel_resp, 2);

  // New feed: both hops should now be prefetched via the chain.
  const auto before = engine_->stats().prefetches_issued;
  run_transaction("u1", make_feed_request(), make_feed_response({"chained"}), 3);
  const auto issued = engine_->stats().prefetches_issued - before;
  EXPECT_GE(issued, 3u);  // product + image + related (chained through product)

  bool hit = false;
  http::Request rel2 = rel;
  rel2.set_form_fields({{"merchant", "m_chained"}});  // canned prefetch merchant
  run_transaction("u1", rel2, rel_resp, 4, &hit);
  EXPECT_TRUE(hit);
}

TEST_F(ProxyTest, FailedPrefetchNotCached) {
  run_transaction("u1", make_feed_request(), make_feed_response({"a", "b"}), 0);
  Session session = engine_->session("u1", 1);
  Decision d = session.on_request(make_product_request("a"), 1);
  ASSERT_EQ(d.served, nullptr);
  // The sibling instance ("b") becomes prefetchable; fail its prefetch.
  Decision r = session.on_response(make_product_request("a"), make_product_response("m", 1), 1);
  for (auto& job : r.prefetches) d.prefetches.push_back(std::move(job));
  ASSERT_FALSE(d.prefetches.empty());
  for (const auto& job : d.prefetches) {
    http::Response fail;
    fail.status = 500;
    session.on_prefetch_response(job, fail, 1, 100.0);
  }
  EXPECT_GT(engine_->stats().prefetch_failures, 0u);
  const auto* cache = engine_->cache_for("u1");
  ASSERT_NE(cache, nullptr);
  for (const auto& job : d.prefetches) {
    EXPECT_FALSE(cache->contains(job.cache_key, 1));
  }
  EXPECT_EQ(cache->size(), 0u);
}

TEST_F(ProxyTest, DuplicatePrefetchSuppressedWhileFresh) {
  run_transaction("u1", make_feed_request(), make_feed_response({"a", "b"}), 0);
  run_transaction("u1", make_product_request("a"), make_product_response("m", 1), 1);
  const auto issued_before = engine_->stats().prefetches_issued;
  // Same feed again: instances already cached -> no re-issue.
  run_transaction("u1", make_feed_request(), make_feed_response({"a", "b"}), 2);
  const auto product_issued = engine_->stats().prefetches_issued - issued_before;
  EXPECT_GT(engine_->stats().skipped_duplicate, 0u);
  EXPECT_EQ(product_issued, 0u);
}

TEST_F(ProxyTest, ExpiredEntryIsReprefetchedOnNextObservation) {
  config_.default_expiration = seconds(10);
  run_transaction("u1", make_feed_request(), make_feed_response({"a", "b"}), 0);
  run_transaction("u1", make_product_request("a"), make_product_response("m", 1), seconds(1));
  // Fresh: hit.
  bool hit = false;
  run_transaction("u1", make_product_request("b"), make_product_response("m", 1), seconds(2),
                  &hit);
  ASSERT_TRUE(hit);
  // Long pause: entries expire. Re-observing the feed re-emits the ready
  // instances, which are re-prefetched because the cache no longer holds
  // them — the behaviour the engine's re-emission design exists for.
  run_transaction("u1", make_feed_request(), make_feed_response({"a", "b"}), seconds(60));
  run_transaction("u1", make_product_request("b"), make_product_response("m", 1), seconds(61),
                  &hit);
  EXPECT_TRUE(hit) << "expired entry must be re-prefetched after re-observation";
}

TEST_F(ProxyTest, StatsDataAccounting) {
  run_transaction("u1", make_feed_request(), make_feed_response({"a", "b"}), 0);
  run_transaction("u1", make_product_request("a"), make_product_response("m", 1), 1);
  // stats() refreshes a shared snapshot: a held reference re-reads the
  // registry on the next stats() call.
  const auto& stats = engine_->stats();
  EXPECT_GT(stats.bytes_origin_to_proxy, 0);
  EXPECT_GT(stats.bytes_prefetched, 0);
  bool hit = false;
  run_transaction("u1", make_product_request("b"), make_product_response("m", 1), 2, &hit);
  ASSERT_TRUE(hit);
  engine_->stats();
  EXPECT_GT(stats.bytes_served_from_cache, 0);
}

TEST_F(ProxyTest, CacheEntriesGaugeTracksRealOccupancy) {
  config_.user_idle_timeout = seconds(30);
  remake_engine();
  run_transaction("u1", make_feed_request(), make_feed_response({"a", "b", "c"}), 0);
  run_transaction("u1", make_product_request("a"), make_product_response("m", 1), 1);
  const PrefetchCache* u1_cache = engine_->cache_for("u1");
  ASSERT_NE(u1_cache, nullptr);
  ASSERT_GT(u1_cache->size(), 0u);
  // The gauge reports live cache occupancy, not the number of prefetches ever
  // issued (the old `prefetched_entries` misnomer).
  EXPECT_EQ(engine_->stats().cache_entries, u1_cache->size());
  EXPECT_EQ(engine_->stats().cache_bytes, u1_cache->bytes());
  EXPECT_EQ(engine_->metrics()->gauge_value("appx_cache_entries"),
            static_cast<std::int64_t>(u1_cache->size()));

  // A second user's cache adds to the same aggregate gauge.
  run_transaction("u2", make_feed_request(), make_feed_response({"a", "b", "c"}), 2);
  run_transaction("u2", make_product_request("a"), make_product_response("m", 1), 3);
  const PrefetchCache* u2_cache = engine_->cache_for("u2");
  ASSERT_NE(u2_cache, nullptr);
  EXPECT_EQ(engine_->stats().cache_entries, u1_cache->size() + u2_cache->size());

  // A new arrival sweeps idle users; their whole footprint leaves the gauge.
  run_transaction("u3", make_feed_request(), make_feed_response({"a"}), minutes(10));
  EXPECT_EQ(engine_->cache_for("u1"), nullptr);
  EXPECT_EQ(engine_->cache_for("u2"), nullptr);
  EXPECT_EQ(engine_->stats().cache_entries, engine_->cache_for("u3")->size());
}

TEST_F(ProxyTest, DroppedPrefetchReleasesOutstandingWindow) {
  config_.max_outstanding_prefetches = 1;
  remake_engine();
  Session session = engine_->session("u1", 0);
  std::vector<PrefetchJob> jobs;
  const auto collect = [&](Decision d) {
    for (auto& job : d.prefetches) jobs.push_back(std::move(job));
  };
  collect(session.on_request(make_feed_request(), 0));
  collect(session.on_response(make_feed_request(), make_feed_response({"a", "b"}), 0));
  collect(session.on_request(make_product_request("a"), 1));
  collect(session.on_response(make_product_request("a"), make_product_response("m", 1), 1));
  ASSERT_EQ(jobs.size(), 1u);  // window of one
  // Abandon the job (queue overflow / torn-down connection). Without the
  // explicit drop path this slot would leak and throttle prefetching to zero.
  session.on_prefetch_dropped(jobs[0], 3);
  EXPECT_EQ(engine_->stats().prefetches_dropped, 1u);
  EXPECT_EQ(session.take_prefetches(4).size(), 1u)
      << "a dropped job must release its outstanding-window slot";
}

TEST_F(ProxyTest, IdleUsersAreEvicted) {
  config_.user_idle_timeout = seconds(30);
  remake_engine();
  run_transaction("u1", make_feed_request(), make_feed_response({"a"}), 0);
  EXPECT_EQ(engine_->user_count(), 1u);
  // u2 shows up long after u1 went quiet: u1's per-user state is reaped.
  run_transaction("u2", make_feed_request(), make_feed_response({"a"}), minutes(5));
  EXPECT_EQ(engine_->user_count(), 1u);
  EXPECT_EQ(engine_->stats().users_evicted, 1u);
  EXPECT_EQ(engine_->cache_for("u1"), nullptr);
  EXPECT_NE(engine_->cache_for("u2"), nullptr);
}

TEST_F(ProxyTest, ActiveUserSurvivesIdleSweep) {
  config_.user_idle_timeout = seconds(30);
  remake_engine();
  run_transaction("u1", make_feed_request(), make_feed_response({"a"}), 0);
  run_transaction("u1", make_product_request("a"), make_product_response("m", 1), seconds(25));
  // u1 was active 25 s ago: under the 30 s timeout, so it stays.
  run_transaction("u2", make_feed_request(), make_feed_response({"a"}), seconds(50));
  EXPECT_EQ(engine_->user_count(), 2u);
  EXPECT_EQ(engine_->stats().users_evicted, 0u);
}

TEST_F(ProxyTest, UserCapEvictsLeastRecentlyActive) {
  config_.user_idle_timeout = std::nullopt;  // isolate the hard cap
  config_.max_users = 2;
  remake_engine();
  run_transaction("u1", make_feed_request(), make_feed_response({"a"}), 0);
  run_transaction("u2", make_feed_request(), make_feed_response({"a"}), 1000);
  run_transaction("u1", make_product_request("a"), make_product_response("m", 1), 2000);
  // Third user: the cap holds by evicting u2, the least recently active.
  run_transaction("u3", make_feed_request(), make_feed_response({"a"}), 3000);
  EXPECT_EQ(engine_->user_count(), 2u);
  EXPECT_EQ(engine_->stats().users_evicted, 1u);
  EXPECT_EQ(engine_->cache_for("u2"), nullptr);
  EXPECT_NE(engine_->cache_for("u1"), nullptr);
  EXPECT_NE(engine_->cache_for("u3"), nullptr);
}

TEST_F(ProxyTest, EvictedKeyNotReprefetchedWithinGeneration) {
  config_.cache_max_entries = 1;  // every insert evicts the previous entry
  remake_engine();
  run_transaction("u1", make_feed_request(), make_feed_response({"a", "b"}), 0);
  run_transaction("u1", make_product_request("a"), make_product_response("m", 1), 1);
  EXPECT_GT(engine_->stats().evicted_lru, 0u);
  // Re-observing the feed with no intervening client request re-emits the
  // ready instances. Their entries were evicted under cache pressure, but
  // re-admitting them would let a cyclic dependency graph prefetch forever;
  // the per-generation guard skips them (and drain_prefetches terminating at
  // all is the real assertion here).
  Session session = engine_->session("u1", 2);
  Decision d = session.on_response(make_feed_request(), make_feed_response({"a", "b"}), 2);
  answer_prefetches(session, std::move(d.prefetches), 2);
  EXPECT_GT(engine_->stats().skipped_refetch, 0u);
}

TEST_F(ProxyTest, PerUserCacheHonoursConfiguredBounds) {
  config_.cache_max_entries = 4;
  remake_engine();
  run_transaction("u1", make_feed_request(),
                  make_feed_response({"a", "b", "c", "d", "e", "f", "g", "h"}), 0);
  run_transaction("u1", make_product_request("a"), make_product_response("m", 1), 1);
  const auto* cache = engine_->cache_for("u1");
  ASSERT_NE(cache, nullptr);
  EXPECT_LE(cache->size(), 4u);
  EXPECT_EQ(cache->limits().max_entries, 4u);
}

// --- Policy engine through the proxy ---------------------------------------------

TEST_F(ProxyTest, PolicyDisabledByDefaultCountsNothing) {
  run_transaction("u1", make_feed_request(), make_feed_response({"a", "b"}), 0);
  run_transaction("u1", make_product_request("a"), make_product_response("m", 1), 1);
  EXPECT_GT(engine_->stats().prefetches_issued, 0u);
  EXPECT_EQ(engine_->stats().policy_admitted, 0u);
  EXPECT_EQ(engine_->stats().policy_rejected_value, 0u);
  EXPECT_EQ(engine_->stats().policy_rejected_budget, 0u);
}

TEST_F(ProxyTest, PolicyPermissiveFloorAdmitsAndStillHits) {
  config_.policy.enabled = true;
  config_.policy.min_value = 1e-9;  // admit everything
  remake_engine();
  run_transaction("u1", make_feed_request(), make_feed_response({"a", "b"}), 0);
  run_transaction("u1", make_product_request("a"), make_product_response("m", 1), 1);
  bool hit = false;
  run_transaction("u1", make_product_request("b"), make_product_response("m", 1), 2, &hit);
  EXPECT_TRUE(hit);
  EXPECT_GT(engine_->stats().policy_admitted, 0u);
  EXPECT_EQ(engine_->stats().policy_admitted, engine_->stats().prefetches_issued);
}

TEST_F(ProxyTest, PolicyHighFloorRejectsByValue) {
  config_.policy.enabled = true;
  config_.policy.min_value = 1e9;  // nothing can clear this
  config_.policy.max_threshold = 1e9;
  remake_engine();
  run_transaction("u1", make_feed_request(), make_feed_response({"a", "b"}), 0);
  run_transaction("u1", make_product_request("a"), make_product_response("m", 1), 1);
  EXPECT_EQ(engine_->stats().prefetches_issued, 0u);
  EXPECT_GT(engine_->stats().policy_rejected_value, 0u);
}

TEST_F(ProxyTest, PolicyBudgetPacerRejectsWithoutHardCliff) {
  config_.policy.enabled = true;
  config_.policy.min_value = 1e-9;
  config_.data_budget = 1;  // pacer bucket of one byte: no expected size fits
  remake_engine();
  run_transaction("u1", make_feed_request(), make_feed_response({"a", "b"}), 0);
  run_transaction("u1", make_product_request("a"), make_product_response("m", 1), 1);
  EXPECT_GT(engine_->stats().policy_rejected_budget, 0u);
  // With the policy on, the legacy cliff counter must stay untouched.
  EXPECT_EQ(engine_->stats().skipped_budget, 0u);
}

TEST_F(ProxyTest, WastedAccountingCountsExpiredUnusedPrefetches) {
  config_.default_expiration = milliseconds(10);
  run_transaction("u1", make_feed_request(), make_feed_response({"a", "b"}), 0);
  run_transaction("u1", make_product_request("a"), make_product_response("m", 1), 1000);
  // The prefetched sibling expires unused; requesting it later both misses
  // and books the expired entry as waste.
  bool hit = true;
  run_transaction("u1", make_product_request("b"), make_product_response("m", 1),
                  seconds(10), &hit);
  EXPECT_FALSE(hit);
  EXPECT_GT(engine_->stats().prefetch_wasted_entries, 0u);
  EXPECT_GT(engine_->stats().prefetch_wasted_bytes, 0);
}

TEST_F(ProxyTest, BoundedEngineQueueShedsBeforeIssue) {
  config_.max_queued_prefetches = 1;
  remake_engine();
  std::vector<std::string> ids;
  for (int i = 0; i < 12; ++i) ids.push_back("id" + std::to_string(i));
  run_transaction("u1", make_feed_request(), make_feed_response(ids), 0);
  run_transaction("u1", make_product_request("id0"), make_product_response("m", 1), 1);
  const auto& stats = engine_->stats();
  EXPECT_GT(stats.skipped_queue_full, 0u);
  // Shed jobs were never issued: the resolution balance holds without them.
  EXPECT_EQ(stats.prefetch_responses + stats.prefetch_failures + stats.prefetches_dropped,
            stats.prefetches_issued);
}

}  // namespace
}  // namespace appx::core
