// Unit tests for the prefetch cache, scheduler and proxy engine (Fig. 10).
#include <gtest/gtest.h>

#include <algorithm>

#include "core/cache.hpp"
#include "core/proxy.hpp"
#include "core/scheduler.hpp"
#include "wish_fixture.hpp"

namespace appx::core {
namespace {

using testfix::make_feed_request;
using testfix::make_feed_response;
using testfix::make_product_request;
using testfix::make_product_response;
using testfix::make_wish_set;

// --- PrefetchCache ---------------------------------------------------------------

TEST(PrefetchCache, HitMissExpiry) {
  PrefetchCache cache;
  PrefetchCache::Lookup lookup;

  EXPECT_EQ(cache.get("k", 0, &lookup), nullptr);
  EXPECT_EQ(lookup, PrefetchCache::Lookup::kMiss);

  PrefetchCache::Entry entry;
  entry.set_response([] {
    http::Response r;
    r.body = "data";
    return r;
  }());
  entry.fetched_at = 0;
  entry.expires_at = 100;
  cache.put("k", entry);

  EXPECT_NE(cache.get("k", 50, &lookup), nullptr);
  EXPECT_EQ(lookup, PrefetchCache::Lookup::kHit);

  EXPECT_EQ(cache.get("k", 100, &lookup), nullptr);
  EXPECT_EQ(lookup, PrefetchCache::Lookup::kExpired);
  // The expired entry is gone: a second lookup is a plain miss.
  EXPECT_EQ(cache.get("k", 100, &lookup), nullptr);
  EXPECT_EQ(lookup, PrefetchCache::Lookup::kMiss);
}

TEST(PrefetchCache, NoExpiryEntryLivesForever) {
  PrefetchCache cache;
  PrefetchCache::Entry entry;
  cache.put("k", entry);
  EXPECT_NE(cache.get("k", 1'000'000'000'000), nullptr);
}

TEST(PrefetchCache, ContainsRespectsExpiry) {
  PrefetchCache cache;
  PrefetchCache::Entry entry;
  entry.expires_at = 10;
  cache.put("k", entry);
  EXPECT_TRUE(cache.contains("k", 5));
  EXPECT_FALSE(cache.contains("k", 10));
  EXPECT_FALSE(cache.contains("other", 5));
}

TEST(PrefetchCache, UsedCountsUniqueEntries) {
  PrefetchCache cache;
  cache.put("a", {});
  cache.put("b", {});
  EXPECT_EQ(cache.entries_used(), 0u);
  cache.get("a", 0);
  cache.get("a", 0);
  EXPECT_EQ(cache.entries_used(), 1u);
  cache.get("b", 0);
  EXPECT_EQ(cache.entries_used(), 2u);
  EXPECT_EQ(cache.entries_inserted(), 2u);
}

TEST(PrefetchCache, PutOverwrites) {
  PrefetchCache cache;
  PrefetchCache::Entry e1;
  e1.set_response([] {
    http::Response r;
    r.body = "old";
    return r;
  }());
  cache.put("k", e1);
  PrefetchCache::Entry e2;
  e2.set_response([] {
    http::Response r;
    r.body = "new";
    return r;
  }());
  cache.put("k", e2);
  EXPECT_EQ(cache.size(), 1u);
  EXPECT_EQ(cache.get("k", 0)->body, "new");
}

// --- scheduler ------------------------------------------------------------------

TEST(SignatureStats, Defaults) {
  SignatureStats stats;
  EXPECT_DOUBLE_EQ(stats.avg_response_time_ms("x"), 0.0);
  EXPECT_DOUBLE_EQ(stats.hit_rate("x"), 0.5);
}

TEST(SignatureStats, Updates) {
  SignatureStats stats;
  stats.record_response_time("x", 100);
  EXPECT_DOUBLE_EQ(stats.avg_response_time_ms("x"), 100);
  stats.record_lookup("x", true);
  stats.record_lookup("x", false);
  EXPECT_DOUBLE_EQ(stats.hit_rate("x"), 0.5);  // (1+1)/(2+2)
  stats.record_lookup("x", true);
  EXPECT_GT(stats.hit_rate("x"), 0.5);
}

TEST(PrefetchScheduler, PriorityOrdering) {
  SignatureStats stats;
  stats.record_response_time("slow", 500);
  stats.record_response_time("fast", 10);

  PrefetchScheduler sched;
  PrefetchJob a;
  a.sig_id = "fast";
  PrefetchJob b;
  b.sig_id = "slow";
  sched.enqueue(a, stats);
  sched.enqueue(b, stats);

  // Slow-to-complete signature dequeues first (paper §5).
  const auto first = sched.dequeue();
  ASSERT_TRUE(first.has_value());
  EXPECT_EQ(first->sig_id, "slow");
  EXPECT_EQ(sched.dequeue()->sig_id, "fast");
}

TEST(PrefetchScheduler, HitRateBreaksTies) {
  SignatureStats stats;
  stats.record_response_time("a", 100);
  stats.record_response_time("b", 100);
  for (int i = 0; i < 20; ++i) {
    stats.record_lookup("a", true);
    stats.record_lookup("b", false);
  }
  PrefetchScheduler sched;
  PrefetchJob ja;
  ja.sig_id = "a";
  PrefetchJob jb;
  jb.sig_id = "b";
  sched.enqueue(jb, stats);
  sched.enqueue(ja, stats);
  EXPECT_EQ(sched.dequeue()->sig_id, "a");
}

TEST(PrefetchScheduler, FifoAmongEqualPriorities) {
  SignatureStats stats;
  PrefetchScheduler sched;
  for (int i = 0; i < 3; ++i) {
    PrefetchJob j;
    j.sig_id = "same";
    j.request.body = std::to_string(i);
    sched.enqueue(j, stats);
  }
  EXPECT_EQ(sched.dequeue()->request.body, "0");
  EXPECT_EQ(sched.dequeue()->request.body, "1");
  EXPECT_EQ(sched.dequeue()->request.body, "2");
}

TEST(PrefetchScheduler, OutstandingWindowLimitsDequeue) {
  SignatureStats stats;
  PrefetchScheduler sched(PrefetchScheduler::Weights{1.0, 200.0}, 2);
  for (int i = 0; i < 5; ++i) sched.enqueue(PrefetchJob{}, stats);
  EXPECT_TRUE(sched.dequeue().has_value());
  EXPECT_TRUE(sched.dequeue().has_value());
  EXPECT_FALSE(sched.dequeue().has_value());  // window full
  EXPECT_EQ(sched.outstanding(), 2u);
  sched.on_completed();
  EXPECT_TRUE(sched.dequeue().has_value());
  EXPECT_EQ(sched.queued(), 2u);
}

// --- ProxyEngine -----------------------------------------------------------------

class ProxyTest : public ::testing::Test {
 protected:
  ProxyTest() : set_(make_wish_set()) {
    config_.default_expiration = seconds(3600);
    engine_ = std::make_unique<ProxyEngine>(&set_, &config_, 7);
  }

  // Drive a full transaction through the proxy as the simulator would:
  // client request -> (cache | origin) -> prefetch jobs -> prefetch responses.
  http::Response run_transaction(const std::string& user, const http::Request& req,
                                 const http::Response& origin_response, SimTime now,
                                 bool* served_from_cache = nullptr) {
    const auto decision = engine_->on_client_request(user, req, now);
    if (served_from_cache != nullptr) *served_from_cache = decision.served != nullptr;
    if (decision.served) return *decision.served;
    engine_->on_origin_response(user, req, origin_response, now);
    drain_prefetches(user, now);
    return origin_response;
  }

  // Answer outstanding prefetch jobs from a canned origin.
  void drain_prefetches(const std::string& user, SimTime now) {
    auto jobs = engine_->take_prefetches(user, now);
    while (!jobs.empty()) {
      for (const auto& job : jobs) {
        http::Response resp;
        if (job.request.uri.path == "/product/get") {
          // Deterministic per-item merchant, like a real origin would return.
          const auto fields = job.request.form_fields();
          resp = make_product_response("m_" + fields[0].second, 1500);
        } else if (job.request.uri.path == "/img") {
          resp.opaque_payload = kilobytes(300);
        } else {
          resp.body = "{}";
        }
        engine_->on_prefetch_response(user, job, resp, now, 165.0);
      }
      jobs = engine_->take_prefetches(user, now);
    }
  }

  SignatureSet set_;
  ProxyConfig config_;
  std::unique_ptr<ProxyEngine> engine_;
};

TEST_F(ProxyTest, EndToEndPrefetchServesSecondInteraction) {
  // 1. Feed: forwarded (nothing cached yet), learning sees the ids.
  run_transaction("u1", make_feed_request(), make_feed_response({"09cf", "3gf3"}), 0);
  // 2. First product request: miss (runtime values unknown before this), but
  //    it teaches the engine; sibling instances are prefetched.
  bool hit = false;
  run_transaction("u1", make_product_request("09cf"), make_product_response("Silk", 1), 1000,
                  &hit);
  EXPECT_FALSE(hit);
  // 3. Second product request: must be a cache hit.
  run_transaction("u1", make_product_request("3gf3"), make_product_response("Silk", 1), 2000,
                  &hit);
  EXPECT_TRUE(hit);
  EXPECT_EQ(engine_->stats().cache_hits, 1u);
  EXPECT_GT(engine_->stats().prefetches_issued, 0u);
}

TEST_F(ProxyTest, PrefetchedResponseIdenticalToOrigin) {
  run_transaction("u1", make_feed_request(), make_feed_response({"a", "b"}), 0);
  run_transaction("u1", make_product_request("a"), make_product_response("Silk", 1500), 1);
  bool hit = false;
  const auto resp = run_transaction("u1", make_product_request("b"),
                                    make_product_response("ignored", 0), 2, &hit);
  ASSERT_TRUE(hit);
  // Served body is the prefetched origin payload (canned per-item merchant).
  EXPECT_EQ(resp.body, make_product_response("m_b", 1500).body);
}

TEST_F(ProxyTest, ExpiredEntryIsMissAndRefetched) {
  config_.default_expiration = milliseconds(10);
  run_transaction("u1", make_feed_request(), make_feed_response({"a", "b"}), 0);
  run_transaction("u1", make_product_request("a"), make_product_response("m", 1), 1000);
  bool hit = true;
  run_transaction("u1", make_product_request("b"), make_product_response("m", 1),
                  seconds(10), &hit);
  EXPECT_FALSE(hit);
  EXPECT_EQ(engine_->stats().cache_expired, 1u);
}

TEST_F(ProxyTest, UsersAreIsolated) {
  run_transaction("u1", make_feed_request(), make_feed_response({"a", "b"}), 0);
  run_transaction("u1", make_product_request("a"), make_product_response("m", 1), 1);
  // u2 never saw anything: its identical request must NOT be served from
  // u1's cache.
  bool hit = true;
  run_transaction("u2", make_product_request("b"), make_product_response("m", 1), 2, &hit);
  EXPECT_FALSE(hit);
  EXPECT_EQ(engine_->user_count(), 2u);
}

TEST_F(ProxyTest, DisabledSignatureIsNotPrefetched) {
  const auto* product = set_.find_by_label("wish.product");
  SignaturePolicy p;
  p.hash = product->id;
  p.prefetch = false;
  config_.set_policy(p);

  run_transaction("u1", make_feed_request(), make_feed_response({"a", "b"}), 0);
  run_transaction("u1", make_product_request("a"), make_product_response("m", 1), 1);
  bool hit = true;
  run_transaction("u1", make_product_request("b"), make_product_response("m", 1), 2, &hit);
  EXPECT_FALSE(hit);
  EXPECT_GT(engine_->stats().skipped_disabled, 0u);
}

TEST_F(ProxyTest, ZeroProbabilityNeverPrefetches) {
  config_.global_probability = 0.0;
  run_transaction("u1", make_feed_request(), make_feed_response({"a", "b"}), 0);
  run_transaction("u1", make_product_request("a"), make_product_response("m", 1), 1);
  EXPECT_EQ(engine_->stats().prefetches_issued, 0u);
  EXPECT_GT(engine_->stats().skipped_probability, 0u);
}

TEST_F(ProxyTest, ConditionGatesPrefetch) {
  const auto* related = set_.find_by_label("wish.related");
  SignaturePolicy p;
  p.hash = related->id;
  p.conditions = {{"data.contest.price", FieldCondition::Op::kGt, "1000"}};
  config_.set_policy(p);

  // Teach the engine related's run-time values (host) with one observation.
  http::Request rel;
  rel.method = "POST";
  rel.uri = http::Uri::parse("https://wish.com/related/get");
  rel.set_form_fields({{"merchant", "Warmup"}});
  http::Response rel_resp;
  rel_resp.body = "{}";
  run_transaction("u1", rel, rel_resp, 0);

  // Product response with price 500: the ready related instance must be
  // rejected by the price condition.
  run_transaction("u1", make_product_request("a"), make_product_response("Cheap", 500), 1);
  EXPECT_GT(engine_->stats().skipped_condition, 0u);

  // Price above the threshold: prefetch proceeds.
  const auto issued_before = engine_->stats().prefetches_issued;
  run_transaction("u1", make_product_request("b"), make_product_response("Lux", 2000), 2);
  EXPECT_GT(engine_->stats().prefetches_issued, issued_before);
}

TEST_F(ProxyTest, DataBudgetStopsPrefetching) {
  config_.data_budget = 1;  // one byte: first prefetch response exhausts it
  std::vector<std::string> ids;
  for (int i = 0; i < 10; ++i) ids.push_back("id" + std::to_string(i));
  run_transaction("u1", make_feed_request(), make_feed_response(ids), 0);
  run_transaction("u1", make_product_request("id0"), make_product_response("m", 1), 1);
  run_transaction("u1", make_feed_request(), make_feed_response({"fresh1", "fresh2"}), 2);
  EXPECT_GT(engine_->stats().skipped_budget, 0u);
}

TEST_F(ProxyTest, AddedHeaderMarksPrefetchButStillMatchesClient) {
  const auto* product = set_.find_by_label("wish.product");
  SignaturePolicy p;
  p.hash = product->id;
  p.add_headers = {{"X-Appx", "prefetch"}};
  config_.set_policy(p);
  engine_ = std::make_unique<ProxyEngine>(&set_, &config_, 7);  // re-read header names

  run_transaction("u1", make_feed_request(), make_feed_response({"a", "b"}), 0);
  run_transaction("u1", make_product_request("a"), make_product_response("m", 1), 1);
  bool hit = false;
  run_transaction("u1", make_product_request("b"), make_product_response("m", 1), 2, &hit);
  EXPECT_TRUE(hit) << "prefetch-marker header must not break exact matching";
}

TEST_F(ProxyTest, ChainedPrefetchReachesSecondHop) {
  // Wish merchant-page chain (Fig. 3c): feed -> product -> related. After
  // the app has shown each transaction once (runtime values known), a new
  // feed item should trigger product prefetch, whose prefetched response
  // triggers related prefetch — without any client involvement.
  run_transaction("u1", make_feed_request(), make_feed_response({"seed"}), 0);
  run_transaction("u1", make_product_request("seed"), make_product_response("SeedStore", 1), 1);
  http::Request img;
  img.uri = http::Uri::parse("https://img.wish.com/img?cid=seed");
  http::Response img_resp;
  img_resp.opaque_payload = kilobytes(300);
  run_transaction("u1", img, img_resp, 1);
  http::Request rel;
  rel.method = "POST";
  rel.uri = http::Uri::parse("https://wish.com/related/get");
  rel.set_form_fields({{"merchant", "SeedStore"}});
  http::Response rel_resp;
  rel_resp.body = "{}";
  run_transaction("u1", rel, rel_resp, 2);

  // New feed: both hops should now be prefetched via the chain.
  const auto before = engine_->stats().prefetches_issued;
  run_transaction("u1", make_feed_request(), make_feed_response({"chained"}), 3);
  const auto issued = engine_->stats().prefetches_issued - before;
  EXPECT_GE(issued, 3u);  // product + image + related (chained through product)

  bool hit = false;
  http::Request rel2 = rel;
  rel2.set_form_fields({{"merchant", "m_chained"}});  // canned prefetch merchant
  run_transaction("u1", rel2, rel_resp, 4, &hit);
  EXPECT_TRUE(hit);
}

TEST_F(ProxyTest, FailedPrefetchNotCached) {
  run_transaction("u1", make_feed_request(), make_feed_response({"a", "b"}), 0);
  const auto decision = engine_->on_client_request("u1", make_product_request("a"), 1);
  ASSERT_EQ(decision.served, nullptr);
  // The sibling instance ("b") becomes prefetchable; fail its prefetch.
  engine_->on_origin_response("u1", make_product_request("a"), make_product_response("m", 1), 1);
  auto jobs = engine_->take_prefetches("u1", 1);
  ASSERT_FALSE(jobs.empty());
  for (const auto& job : jobs) {
    http::Response fail;
    fail.status = 500;
    engine_->on_prefetch_response("u1", job, fail, 1, 100.0);
  }
  EXPECT_GT(engine_->stats().prefetch_failures, 0u);
  const auto* cache = engine_->cache_for("u1");
  ASSERT_NE(cache, nullptr);
  for (const auto& job : jobs) {
    EXPECT_FALSE(cache->contains(job.cache_key, 1));
  }
  EXPECT_EQ(cache->size(), 0u);
}

TEST_F(ProxyTest, DuplicatePrefetchSuppressedWhileFresh) {
  run_transaction("u1", make_feed_request(), make_feed_response({"a", "b"}), 0);
  run_transaction("u1", make_product_request("a"), make_product_response("m", 1), 1);
  const auto issued_before = engine_->stats().prefetches_issued;
  // Same feed again: instances already cached -> no re-issue.
  run_transaction("u1", make_feed_request(), make_feed_response({"a", "b"}), 2);
  const auto product_issued = engine_->stats().prefetches_issued - issued_before;
  EXPECT_GT(engine_->stats().skipped_duplicate, 0u);
  EXPECT_EQ(product_issued, 0u);
}

TEST_F(ProxyTest, ExpiredEntryIsReprefetchedOnNextObservation) {
  config_.default_expiration = seconds(10);
  run_transaction("u1", make_feed_request(), make_feed_response({"a", "b"}), 0);
  run_transaction("u1", make_product_request("a"), make_product_response("m", 1), seconds(1));
  // Fresh: hit.
  bool hit = false;
  run_transaction("u1", make_product_request("b"), make_product_response("m", 1), seconds(2),
                  &hit);
  ASSERT_TRUE(hit);
  // Long pause: entries expire. Re-observing the feed re-emits the ready
  // instances, which are re-prefetched because the cache no longer holds
  // them — the behaviour the engine's re-emission design exists for.
  run_transaction("u1", make_feed_request(), make_feed_response({"a", "b"}), seconds(60));
  run_transaction("u1", make_product_request("b"), make_product_response("m", 1), seconds(61),
                  &hit);
  EXPECT_TRUE(hit) << "expired entry must be re-prefetched after re-observation";
}

TEST_F(ProxyTest, StatsDataAccounting) {
  run_transaction("u1", make_feed_request(), make_feed_response({"a", "b"}), 0);
  run_transaction("u1", make_product_request("a"), make_product_response("m", 1), 1);
  const auto& stats = engine_->stats();
  EXPECT_GT(stats.bytes_origin_to_proxy, 0);
  EXPECT_GT(stats.bytes_prefetched, 0);
  bool hit = false;
  run_transaction("u1", make_product_request("b"), make_product_response("m", 1), 2, &hit);
  ASSERT_TRUE(hit);
  EXPECT_GT(stats.bytes_served_from_cache, 0);
}

}  // namespace
}  // namespace appx::core
