// Unit tests for the obs subsystem: counters, gauges, log-linear histograms,
// the metrics registry and its exports, the trace ring, and snapshots.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <thread>
#include <vector>

#include "json/json.hpp"
#include "obs/metrics.hpp"
#include "obs/snapshot.hpp"
#include "obs/trace.hpp"
#include "util/rng.hpp"
#include "util/units.hpp"

namespace appx {
namespace {

using obs::Counter;
using obs::Gauge;
using obs::Histogram;
using obs::MetricsRegistry;

// --- Counter / Gauge ---------------------------------------------------------

TEST(ObsCounter, AddAccumulatesAcrossStripes) {
  Counter c;
  EXPECT_EQ(c.value(), 0);
  c.inc();
  c.add(41);
  EXPECT_EQ(c.value(), 42);
}

TEST(ObsCounter, ConcurrentIncrementsAreExact) {
  Counter c;
  constexpr int kThreads = 8;
  constexpr int kIncs = 20000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&c] {
      for (int i = 0; i < kIncs; ++i) c.inc();
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(c.value(), static_cast<std::int64_t>(kThreads) * kIncs);
}

TEST(ObsGauge, SetAddSub) {
  Gauge g;
  g.set(10);
  g.add(5);
  g.sub(3);
  EXPECT_EQ(g.value(), 12);
}

// --- Histogram bucket geometry (property tests) ------------------------------

TEST(ObsHistogram, BucketBoundsContainTheValue) {
  Rng rng(0xB0CA);
  for (int i = 0; i < 20000; ++i) {
    // Exercise every octave: random bit width, then random value of that width.
    const int bits = static_cast<int>(rng.uniform_int(0, 62));
    const std::int64_t value =
        static_cast<std::int64_t>(rng.next_u64() & ((std::uint64_t{1} << bits) | ((std::uint64_t{1} << bits) - 1)));
    const std::size_t index = Histogram::bucket_index(value);
    ASSERT_LT(index, Histogram::kBucketCount);
    const auto [lo, hi] = Histogram::bucket_bounds(index);
    EXPECT_LE(lo, value) << "value=" << value << " index=" << index;
    EXPECT_GT(hi, value) << "value=" << value << " index=" << index;
  }
}

TEST(ObsHistogram, BucketWidthBoundsRelativeError) {
  // Each octave splits into 16 linear sub-buckets, so for values >= 16 the
  // bucket width is at most lo/8 -> midpoint is within 6.25% of any member.
  Rng rng(0xE44);
  for (int i = 0; i < 20000; ++i) {
    const std::int64_t value =
        static_cast<std::int64_t>((rng.next_u64() >> 1) >> (rng.next_u64() % 48)) | 16;
    const auto [lo, hi] = Histogram::bucket_bounds(Histogram::bucket_index(value));
    ASSERT_GT(lo, 0);
    EXPECT_LE(static_cast<double>(hi - lo), static_cast<double>(lo) / 8.0 + 1e-9)
        << "lo=" << lo << " hi=" << hi;
  }
}

TEST(ObsHistogram, SmallValuesAreExact) {
  Histogram h;
  for (std::int64_t v = 0; v < 16; ++v) h.record(v);
  for (std::int64_t v = 0; v < 16; ++v) {
    const auto [lo, hi] = Histogram::bucket_bounds(Histogram::bucket_index(v));
    EXPECT_EQ(lo, v);
    EXPECT_EQ(hi, v + 1);
  }
  EXPECT_EQ(h.min(), 0);
  EXPECT_EQ(h.max(), 15);
}

TEST(ObsHistogram, NegativeValuesClampToZero) {
  Histogram h;
  h.record(-5);
  EXPECT_EQ(h.count(), 1);
  EXPECT_EQ(h.min(), 0);
  EXPECT_EQ(h.quantile(0.5), 0);
}

TEST(ObsHistogram, QuantileWithinRelativeErrorBound) {
  // Uniform 1..100000: every quantile of the recorded set is known exactly;
  // the histogram estimate must land within 6.25% of it.
  Histogram h;
  constexpr std::int64_t kN = 100000;
  for (std::int64_t v = 1; v <= kN; ++v) h.record(v);
  for (const double q : {0.01, 0.10, 0.50, 0.90, 0.95, 0.99, 0.999}) {
    const double exact = q * static_cast<double>(kN);
    const double est = static_cast<double>(h.quantile(q));
    EXPECT_NEAR(est, exact, exact * 0.0625 + 1.0) << "q=" << q;
  }
  EXPECT_EQ(h.quantile(0.0), h.quantile(0.0));  // does not crash at the edges
  EXPECT_GE(h.quantile(1.0), h.quantile(0.999));
}

TEST(ObsHistogram, P999OnKnownDistribution) {
  // 0..9999 recorded once each: the 99.9th percentile of the recorded set is
  // 9990, and the log-linear estimate must land within the 6.25% bucket
  // bound. Both exporters must carry the 0.999 quantile — p99 alone hides a
  // 1-in-1000 stall entirely (satellite of the macro-bench PR).
  MetricsRegistry reg;
  auto& h = reg.histogram("appx_lat_us");
  for (int v = 0; v < 10000; ++v) h.record(v);
  EXPECT_NEAR(static_cast<double>(h.quantile(0.999)), 9990.0, 9990.0 * 0.0625);
  const std::string text = reg.to_prometheus();
  EXPECT_NE(text.find("appx_lat_us{quantile=\"0.999\"}"), std::string::npos) << text;
  const json::Value parsed = json::parse(reg.to_json().dump());
  const json::Value& hist = parsed.at("histograms").at("appx_lat_us");
  EXPECT_NEAR(hist.at("p999").as_double(), 9990.0, 9990.0 * 0.0625);
  EXPECT_GE(hist.at("p999").as_double(), hist.at("p99").as_double());
}

TEST(ObsHistogram, P999SeesTheRareTailP99Misses) {
  // 1990 fast samples and ten 100 ms stalls (a 0.5% tail): p99's rank
  // (ceil(0.99 * 2000) = 1980) stays inside the fast samples while p99.9's
  // (1998) lands in the stalls — the quantile exists precisely to catch the
  // rare-stall tail that p99 reports as healthy.
  Histogram h;
  for (int i = 0; i < 1990; ++i) h.record(100);
  for (int i = 0; i < 10; ++i) h.record(100000);
  EXPECT_NEAR(static_cast<double>(h.quantile(0.99)), 100.0, 100.0 * 0.0625);
  EXPECT_GT(h.quantile(0.999), 50 * h.quantile(0.99));
}

TEST(ObsHistogram, CountSumMeanMinMax) {
  Histogram h;
  EXPECT_EQ(h.count(), 0);
  EXPECT_EQ(h.min(), 0);
  EXPECT_EQ(h.max(), 0);
  EXPECT_EQ(h.mean(), 0.0);
  h.record(10);
  h.record(30);
  EXPECT_EQ(h.count(), 2);
  EXPECT_EQ(h.sum(), 40);
  EXPECT_EQ(h.min(), 10);
  EXPECT_EQ(h.max(), 30);
  EXPECT_DOUBLE_EQ(h.mean(), 20.0);
}

TEST(ObsHistogram, MergeMatchesSingleHistogram) {
  Histogram a, b, all;
  Rng rng(7);
  for (int i = 0; i < 5000; ++i) {
    const std::int64_t v = static_cast<std::int64_t>(rng.next_u64() % 1000000);
    ((i % 2) ? a : b).record(v);
    all.record(v);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_EQ(a.sum(), all.sum());
  EXPECT_EQ(a.min(), all.min());
  EXPECT_EQ(a.max(), all.max());
  for (const double q : {0.5, 0.9, 0.99}) {
    EXPECT_EQ(a.quantile(q), all.quantile(q)) << "q=" << q;
  }
}

TEST(ObsHistogram, ConcurrentRecordsKeepExactCountAndSum) {
  Histogram h;
  constexpr int kThreads = 8;
  constexpr int kRecords = 10000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&h, t] {
      // Unsigned mixing: the multiply wraps (well-defined), signed would be UB.
      std::uint64_t v = 1 + static_cast<std::uint64_t>(t);
      for (int i = 0; i < kRecords; ++i) {
        h.record(static_cast<std::int64_t>(v % 4096));
        v = v * 31 + 7;
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(h.count(), static_cast<std::int64_t>(kThreads) * kRecords);
  EXPECT_LT(h.max(), 4096);
  EXPECT_GE(h.min(), 0);
}

// --- labeled() ---------------------------------------------------------------

TEST(ObsLabeled, RendersSortedStableNames) {
  EXPECT_EQ(obs::labeled("appx_x_total", {}), "appx_x_total");
  EXPECT_EQ(obs::labeled("appx_x_total", {{"reason", "dup"}}),
            "appx_x_total{reason=\"dup\"}");
  EXPECT_EQ(obs::labeled("appx_x_total", {{"a", "1"}, {"b", "2"}}),
            "appx_x_total{a=\"1\",b=\"2\"}");
}

TEST(ObsLabeled, EscapesQuotesAndBackslashes) {
  const std::string name = obs::labeled("appx_sig", {{"sig", "GET \"a\\b\""}});
  EXPECT_EQ(name, "appx_sig{sig=\"GET \\\"a\\\\b\\\"\"}");
}

// --- MetricsRegistry ---------------------------------------------------------

TEST(ObsRegistry, ResolvesStableAddresses) {
  MetricsRegistry reg;
  Counter& c1 = reg.counter("appx_a_total");
  Counter& c2 = reg.counter("appx_a_total");
  EXPECT_EQ(&c1, &c2);
  c1.add(3);
  EXPECT_EQ(reg.counter_value("appx_a_total"), 3);
  EXPECT_EQ(reg.counter_value("appx_missing_total"), 0);
  reg.gauge("appx_g").set(9);
  EXPECT_EQ(reg.gauge_value("appx_g"), 9);
  EXPECT_EQ(reg.find_histogram("appx_h_us"), nullptr);
  reg.histogram("appx_h_us").record(5);
  ASSERT_NE(reg.find_histogram("appx_h_us"), nullptr);
  EXPECT_EQ(reg.find_histogram("appx_h_us")->count(), 1);
}

TEST(ObsRegistry, GaugeCallbackSampledAtExport) {
  MetricsRegistry reg;
  std::int64_t level = 17;
  reg.gauge_callback("appx_cb", [&level] { return level; });
  EXPECT_EQ(reg.gauge_value("appx_cb"), 17);
  level = 99;
  const std::string text = reg.to_prometheus();
  EXPECT_NE(text.find("appx_cb 99"), std::string::npos) << text;
}

TEST(ObsRegistry, PrometheusExportShape) {
  MetricsRegistry reg;
  reg.counter("appx_req_total").add(5);
  reg.counter(obs::labeled("appx_skip_total", {{"reason", "dup"}})).add(2);
  reg.gauge("appx_depth").set(3);
  auto& h = reg.histogram("appx_lat_us");
  for (int i = 1; i <= 100; ++i) h.record(i * 100);
  const std::string text = reg.to_prometheus();
  EXPECT_NE(text.find("# TYPE appx_req_total counter"), std::string::npos) << text;
  EXPECT_NE(text.find("appx_req_total 5"), std::string::npos);
  EXPECT_NE(text.find("appx_skip_total{reason=\"dup\"} 2"), std::string::npos);
  EXPECT_NE(text.find("# TYPE appx_depth gauge"), std::string::npos);
  EXPECT_NE(text.find("appx_depth 3"), std::string::npos);
  EXPECT_NE(text.find("appx_lat_us_count 100"), std::string::npos);
  EXPECT_NE(text.find("appx_lat_us{quantile=\"0.99\"}"), std::string::npos);
  // Every non-comment line is `name[{labels}] value`.
  std::istringstream lines(text);
  std::string line;
  while (std::getline(lines, line)) {
    if (line.empty() || line[0] == '#') continue;
    const auto space = line.rfind(' ');
    ASSERT_NE(space, std::string::npos) << line;
    EXPECT_NO_THROW((void)std::stod(line.substr(space + 1))) << line;
  }
}

TEST(ObsRegistry, JsonExportRoundTrips) {
  MetricsRegistry reg;
  reg.counter("appx_req_total").add(7);
  reg.gauge("appx_depth").set(2);
  auto& h = reg.histogram("appx_lat_us");
  for (int i = 1; i <= 1000; ++i) h.record(i);
  const json::Value parsed = json::parse(reg.to_json().dump());
  EXPECT_EQ(parsed.at("counters").at("appx_req_total").as_int(), 7);
  EXPECT_EQ(parsed.at("gauges").at("appx_depth").as_int(), 2);
  const json::Value& hist = parsed.at("histograms").at("appx_lat_us");
  EXPECT_EQ(hist.at("count").as_int(), 1000);
  EXPECT_GT(hist.at("p99").as_double(), hist.at("p50").as_double());
  EXPECT_GE(hist.at("max").as_int(), hist.at("p99").as_int());
}

TEST(ObsRegistry, ConcurrentResolveAndRecord) {
  MetricsRegistry reg;
  constexpr int kThreads = 8;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&reg] {
      Counter& c = reg.counter("appx_shared_total");
      obs::Histogram& h = reg.histogram("appx_shared_us");
      for (int i = 0; i < 5000; ++i) {
        c.inc();
        h.record(i);
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(reg.counter_value("appx_shared_total"), kThreads * 5000);
  EXPECT_EQ(reg.find_histogram("appx_shared_us")->count(), kThreads * 5000);
}

// --- TraceRing ---------------------------------------------------------------

obs::RequestTrace make_trace(const std::string& target) {
  obs::RequestTrace t;
  t.user = "u1";
  t.method = "GET";
  t.target = target;
  t.outcome = "hit";
  t.start_us = 100;
  t.end_us = 400;
  t.add_span("decide", 100, 150, "hit");
  t.add_span("respond", 150, 400);
  return t;
}

TEST(ObsTraceRing, AssignsMonotonicIds) {
  obs::TraceRing ring(8);
  EXPECT_EQ(ring.push(make_trace("/a")), 1u);
  EXPECT_EQ(ring.push(make_trace("/b")), 2u);
  const auto traces = ring.snapshot();
  ASSERT_EQ(traces.size(), 2u);
  EXPECT_EQ(traces[0].id, 1u);
  EXPECT_EQ(traces[1].target, "/b");
}

TEST(ObsTraceRing, EvictsOldestWhenFull) {
  obs::TraceRing ring(4);
  for (int i = 0; i < 10; ++i) ring.push(make_trace("/t" + std::to_string(i)));
  EXPECT_EQ(ring.size(), 4u);
  EXPECT_EQ(ring.recorded(), 10u);
  const auto traces = ring.snapshot();
  EXPECT_EQ(traces.front().target, "/t6");  // 6,7,8,9 survive
  EXPECT_EQ(traces.back().target, "/t9");
}

TEST(ObsTraceRing, JsonDumpParses) {
  obs::TraceRing ring(4);
  ring.push(make_trace("/feed"));
  const json::Value parsed = json::parse(ring.to_json().dump(2));
  EXPECT_EQ(parsed.at("capacity").as_int(), 4);
  EXPECT_EQ(parsed.at("recorded").as_int(), 1);
  const json::Value& trace = parsed.at("traces").at(std::size_t{0});
  EXPECT_EQ(trace.at("target").as_string(), "/feed");
  EXPECT_EQ(trace.at("outcome").as_string(), "hit");
  EXPECT_EQ(trace.at("spans").size(), 2u);
  EXPECT_EQ(trace.at("spans").at(std::size_t{0}).at("name").as_string(), "decide");
}

TEST(ObsTraceRing, ConcurrentPushesAllRecorded) {
  obs::TraceRing ring(64);
  constexpr int kThreads = 4;
  constexpr int kEach = 500;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&ring] {
      for (int i = 0; i < kEach; ++i) ring.push(make_trace("/x"));
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(ring.recorded(), static_cast<std::uint64_t>(kThreads) * kEach);
  EXPECT_EQ(ring.size(), 64u);
}

// --- SnapshotWriter ----------------------------------------------------------

TEST(ObsSnapshot, WriteNowProducesParsableFile) {
  MetricsRegistry reg;
  reg.counter("appx_req_total").add(11);
  const std::string path = ::testing::TempDir() + "appx_obs_snapshot_test.json";
  {
    obs::SnapshotWriter writer(&reg, path, minutes(10));
    ASSERT_TRUE(writer.write_now());
    EXPECT_EQ(writer.snapshots_written(), 1u);
    writer.stop();
  }
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::stringstream buffer;
  buffer << in.rdbuf();
  const json::Value parsed = json::parse(buffer.str());
  EXPECT_EQ(parsed.at("counters").at("appx_req_total").as_int(), 11);
  std::remove(path.c_str());
}

TEST(ObsSnapshot, WriteFailsOnBadPath) {
  MetricsRegistry reg;
  obs::SnapshotWriter writer(&reg, "/nonexistent-dir/appx.json", minutes(10));
  EXPECT_FALSE(writer.write_now());
  writer.stop();
}

}  // namespace
}  // namespace appx
