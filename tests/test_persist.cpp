// Durable learned state (DESIGN.md §5k): snapshot container robustness and
// engine-level warm restart / user handoff.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstring>

#include "core/persist.hpp"
#include "core/proxy.hpp"
#include "core/sharded_proxy.hpp"
#include "util/hash.hpp"
#include "wish_fixture.hpp"

namespace appx::core {
namespace {

using testfix::make_feed_request;
using testfix::make_feed_response;
using testfix::make_product_request;
using testfix::make_product_response;
using testfix::make_wish_set;

ByteWriter payload_of(std::string_view text) {
  ByteWriter w;
  w.raw(text.data(), text.size());
  return w;
}

std::vector<std::uint8_t> two_section_blob() {
  SnapshotBuilder builder;
  builder.add_raw("alpha", 1, payload_of("aaaa"));
  builder.add_raw("beta", 3, payload_of("bb"));
  return builder.finish();
}

// Re-stamp the trailing checksum after test-side surgery on the blob, so the
// corruption under test (and only it) is what the parser sees.
void refresh_checksum(std::vector<std::uint8_t>& blob) {
  const std::uint64_t sum = fnv1a(blob.data(), blob.size() - 8);
  for (int i = 0; i < 8; ++i) {
    blob[blob.size() - 8 + i] = static_cast<std::uint8_t>(sum >> (8 * i));
  }
}

// --- container robustness --------------------------------------------------------

TEST(SnapshotContainer, RoundTripsSectionsAndVersions) {
  const auto blob = two_section_blob();
  const SnapshotView view(blob);
  EXPECT_EQ(view.container_version(), kSnapshotFormatVersion);
  ASSERT_EQ(view.section_count(), 2u);
  const SnapshotView::Section* alpha = view.find("alpha");
  ASSERT_NE(alpha, nullptr);
  EXPECT_EQ(alpha->version, 1u);
  EXPECT_EQ(std::string_view(reinterpret_cast<const char*>(alpha->data), alpha->size), "aaaa");
  const SnapshotView::Section* beta = view.find("beta");
  ASSERT_NE(beta, nullptr);
  EXPECT_EQ(beta->version, 3u);
  EXPECT_EQ(view.find("gamma"), nullptr);
}

TEST(SnapshotContainer, EmptySnapshotParses) {
  const auto blob = SnapshotBuilder().finish();
  EXPECT_EQ(SnapshotView(blob).section_count(), 0u);
}

TEST(SnapshotContainer, TruncationIsCorruptNotACrash) {
  const auto blob = two_section_blob();
  // Every proper prefix must be rejected cleanly — a torn write can stop at
  // any byte.
  for (std::size_t len : {std::size_t{0}, std::size_t{4}, blob.size() / 2, blob.size() - 1}) {
    std::vector<std::uint8_t> cut(blob.begin(), blob.begin() + static_cast<long>(len));
    EXPECT_THROW(SnapshotView{cut}, SnapshotCorruptError) << "prefix of " << len;
  }
}

TEST(SnapshotContainer, BitFlipFailsTheChecksum) {
  auto blob = two_section_blob();
  blob[blob.size() / 2] ^= 0x40;
  EXPECT_THROW(SnapshotView{blob}, SnapshotCorruptError);
}

TEST(SnapshotContainer, BadMagicIsCorrupt) {
  auto blob = two_section_blob();
  blob[0] = 'Z';
  EXPECT_THROW(SnapshotView{blob}, SnapshotCorruptError);
}

TEST(SnapshotContainer, FutureContainerVersionIsAnExplicitError) {
  auto blob = two_section_blob();
  // Container version is the LE u32 right after the 8-byte magic.
  blob[8] = static_cast<std::uint8_t>(kSnapshotFormatVersion + 1);
  refresh_checksum(blob);
  EXPECT_THROW(SnapshotView{blob}, SnapshotVersionError);
}

TEST(SnapshotContainer, LyingSectionLengthIsCorrupt) {
  SnapshotBuilder builder;
  builder.add_raw("alpha", 1, payload_of("aaaa"));
  auto blob = builder.finish();
  // Grow the section's declared length past the end of the file.
  const char* name = "alpha";
  auto it = std::search(blob.begin(), blob.end(), name, name + 5);
  ASSERT_NE(it, blob.end());
  // str is u32 length + bytes; the section version (u32) follows, then the
  // u64 payload length.
  const std::size_t len_at = static_cast<std::size_t>(it - blob.begin()) + 5 + 4;
  blob[len_at] = 0xff;
  refresh_checksum(blob);
  EXPECT_THROW(SnapshotView{blob}, SnapshotCorruptError);
}

TEST(SnapshotContainer, UnknownAndFutureSectionsLeaveComponentsCold) {
  SnapshotBuilder builder;
  builder.add_raw("known", 1, payload_of("data"));
  builder.add_raw("from.the.future", 9, payload_of("????"));
  const auto blob = builder.finish();
  const SnapshotView view(blob);

  std::string seen;
  PersistableFn known("known", 2, [](ByteWriter&) {},
                      [&seen](ByteReader& in, std::uint32_t version) {
                        EXPECT_EQ(version, 1u);  // the version it was written with
                        seen = std::string(reinterpret_cast<const char*>(in.cursor()), 4);
                      });
  EXPECT_TRUE(view.restore_into(known));
  EXPECT_EQ(seen, "data");

  // Same name, but the payload was written by a newer component revision.
  PersistableFn stale("from.the.future", 2, [](ByteWriter&) {},
                      [](ByteReader&, std::uint32_t) { FAIL() << "must stay cold"; });
  EXPECT_FALSE(view.restore_into(stale));
  // Absent name: cold, not an error.
  PersistableFn absent("never.written", 1, [](ByteWriter&) {}, {});
  EXPECT_FALSE(view.restore_into(absent));
}

TEST(SnapshotContainer, DecodeErrorInsideSectionIsCorrupt) {
  SnapshotBuilder builder;
  builder.add_raw("tiny", 1, payload_of("ab"));
  const auto blob = builder.finish();
  const SnapshotView view(blob);
  PersistableFn overreader("tiny", 1, [](ByteWriter&) {},
                           [](ByteReader& in, std::uint32_t) { in.u64(); });
  EXPECT_THROW(view.restore_into(overreader), SnapshotCorruptError);
}

// --- engine snapshot / restore ---------------------------------------------------

class PersistEngineTest : public ::testing::Test {
 protected:
  PersistEngineTest() : set_(make_wish_set()), restored_set_(make_wish_set()) {
    config_.default_expiration = seconds(3600);
    engine_ = std::make_unique<ProxyEngine>(&set_, &config_, 7);
  }

  // Feed + first product: resolves wildcards, learns the dependency flows and
  // feeds the value model — the state a warm restart must preserve.
  void teach(ProxyLike& engine, const std::string& user) {
    run(engine, user, make_feed_request(), make_feed_response({"09cf", "3gf3"}), 0);
    run(engine, user, make_product_request("09cf"), make_product_response("Silk", 1), 1000);
  }

  // After a feed re-arms the instances, the sibling product must be a hit —
  // i.e. the engine acts on learned state instead of relearning it.
  bool serves_sibling_from_cache(ProxyLike& engine, const std::string& user, SimTime base) {
    run(engine, user, make_feed_request(), make_feed_response({"09cf", "3gf3"}), base);
    bool hit = false;
    run(engine, user, make_product_request("3gf3"), make_product_response("Silk", 1), base + 1,
        &hit);
    return hit;
  }

  void run(ProxyLike& engine, const std::string& user, const http::Request& req,
           const http::Response& origin_response, SimTime now, bool* hit = nullptr) {
    Session session = engine.session(user, now);
    Decision d = session.on_request(req, now);
    if (hit != nullptr) *hit = d.served != nullptr;
    std::vector<PrefetchJob> jobs = std::move(d.prefetches);
    if (!d.served) {
      Decision r = session.on_response(req, origin_response, now);
      for (auto& job : r.prefetches) jobs.push_back(std::move(job));
    }
    while (!jobs.empty()) {
      std::vector<PrefetchJob> next;
      for (const auto& job : jobs) {
        http::Response resp;
        if (job.request.uri.path == "/product/get") {
          resp = make_product_response("m_" + job.request.form_fields()[0].second, 1500);
        } else if (job.request.uri.path == "/img") {
          resp.opaque_payload = kilobytes(300);
        } else {
          resp.body = "{}";
        }
        Decision f = session.on_prefetch_response(job, resp, now, 165.0);
        for (auto& follow : f.prefetches) next.push_back(std::move(follow));
      }
      for (auto& job : session.take_prefetches(now)) next.push_back(std::move(job));
      jobs = std::move(next);
    }
  }

  std::vector<std::uint8_t> snapshot(const ProxyLike& engine) {
    SnapshotBuilder builder;
    engine.snapshot_to(builder);
    return builder.finish();
  }

  SignatureSet set_;
  SignatureSet restored_set_;  // restored engines need their own copy
  ProxyConfig config_;
  std::unique_ptr<ProxyEngine> engine_;
};

TEST_F(PersistEngineTest, WarmRestartActsOnRestoredLearning) {
  teach(*engine_, "u1");
  const auto blob = snapshot(*engine_);

  ProxyEngine fresh(&restored_set_, &config_, 7);
  // Cold control: without the snapshot the sibling product is a miss.
  EXPECT_FALSE(serves_sibling_from_cache(fresh, "u1", minutes(10)));

  ProxyEngine warmed(&restored_set_, &config_, 7);
  const SnapshotView view(blob);
  EXPECT_EQ(warmed.restore_from(view, minutes(10)), 1u);
  EXPECT_TRUE(serves_sibling_from_cache(warmed, "u1", minutes(10)));
}

TEST_F(PersistEngineTest, SnapshotRoundTripIsByteIdentical) {
  teach(*engine_, "u1");
  const auto blob = snapshot(*engine_);

  ProxyEngine warmed(&restored_set_, &config_, 7);
  warmed.restore_from(SnapshotView(blob), minutes(10));
  // Persist the restored engine: learned sections must reproduce the exact
  // bytes (resolved wildcards, flows, EWMAs, counters — nothing lossy).
  const auto reblob = snapshot(warmed);
  EXPECT_EQ(blob, reblob);
}

TEST_F(PersistEngineTest, RestoreIsMergeNotReplace) {
  teach(*engine_, "u1");
  const auto blob = snapshot(*engine_);
  ProxyEngine warmed(&restored_set_, &config_, 7);
  teach(warmed, "u2");  // pre-existing local user
  warmed.restore_from(SnapshotView(blob), minutes(10));
  EXPECT_TRUE(serves_sibling_from_cache(warmed, "u1", minutes(10)));
  EXPECT_TRUE(serves_sibling_from_cache(warmed, "u2", minutes(20)));
}

TEST_F(PersistEngineTest, FutureUsersSectionLeavesUsersCold) {
  teach(*engine_, "u1");
  SnapshotBuilder builder;
  engine_->snapshot_to(builder);
  // Re-render with the users section replaced by a future revision.
  SnapshotBuilder future;
  ByteWriter bogus;
  bogus.u32(1);
  future.add_raw("users", ProxyEngine::kUsersSectionVersion + 1, bogus);
  ProxyEngine warmed(&restored_set_, &config_, 7);
  EXPECT_EQ(warmed.restore_from(SnapshotView(future.finish()), minutes(10)), 0u);
}

TEST_F(PersistEngineTest, ExportImportHandsUserToAnotherEngine) {
  teach(*engine_, "mover");
  EXPECT_TRUE(engine_->export_user("never-seen").empty());
  const std::vector<std::uint8_t> shard = engine_->export_user("mover");
  ASSERT_FALSE(shard.empty());

  ProxyEngine successor(&restored_set_, &config_, 7);
  EXPECT_TRUE(successor.import_user(shard, minutes(10)));
  EXPECT_TRUE(serves_sibling_from_cache(successor, "mover", minutes(10)));
}

TEST_F(PersistEngineTest, ImportRejectsCorruptBlobsCleanly) {
  teach(*engine_, "mover");
  auto shard = engine_->export_user("mover");
  shard[shard.size() / 2] ^= 0x10;
  ProxyEngine successor(&restored_set_, &config_, 7);
  EXPECT_THROW(successor.import_user(shard, 0), SnapshotCorruptError);
  // The failed import left no trace.
  EXPECT_EQ(successor.user_count(), 0u);
}

TEST_F(PersistEngineTest, SingleShardSnapshotRestoresIntoShardedEngine) {
  teach(*engine_, "u1");
  teach(*engine_, "u2");
  const auto blob = snapshot(*engine_);

  EngineOptions options;
  options.shards = 3;
  ShardedProxyEngine fleet(&restored_set_, &config_, options);
  EXPECT_EQ(fleet.restore_from(SnapshotView(blob), minutes(10)), 2u);
  // Users land on whatever shard the fleet's hash picks; both serve warm.
  EXPECT_TRUE(serves_sibling_from_cache(fleet, "u1", minutes(10)));
  EXPECT_TRUE(serves_sibling_from_cache(fleet, "u2", minutes(20)));
}

TEST_F(PersistEngineTest, ShardedSnapshotRestoresIntoSingleEngine) {
  EngineOptions options;
  options.shards = 3;
  ShardedProxyEngine fleet(&set_, &config_, options);
  teach(fleet, "u1");
  teach(fleet, "u2");
  teach(fleet, "u3");
  SnapshotBuilder builder;
  fleet.snapshot_to(builder);

  ProxyEngine single(&restored_set_, &config_, 7);
  EXPECT_EQ(single.restore_from(SnapshotView(builder.finish()), minutes(10)), 3u);
  EXPECT_TRUE(serves_sibling_from_cache(single, "u2", minutes(10)));
}

}  // namespace
}  // namespace appx::core
