// Multi-app proxy tests (paper §2: "the proxy can accelerate multiple target
// apps" while keeping per-user, per-app state separate).
#include <gtest/gtest.h>

#include "analysis/analyzer.hpp"
#include "apps/catalog.hpp"
#include "apps/compiler.hpp"
#include "apps/server.hpp"
#include "core/proxy.hpp"
#include "util/error.hpp"

namespace appx::core {
namespace {

struct MultiAppFixture : public ::testing::Test {
  MultiAppFixture()
      : wish_(apps::make_wish()),
        geek_(apps::make_geek()),
        wish_server_(&wish_),
        geek_server_(&geek_) {
    combined_.absorb(analysis::analyze(apps::compile_app(wish_)).signatures);
    combined_.absorb(analysis::analyze(apps::compile_app(geek_)).signatures);
    config_.default_expiration = minutes(30);
    for (const apps::AppSpec* app : {&wish_, &geek_}) {
      for (const apps::EndpointSpec& ep : app->endpoints) {
        config_.host_apps[ep.host] = app->package;
      }
    }
    engine_ = std::make_unique<ProxyEngine>(&combined_, &config_, 11);
  }

  // Serve from whichever origin owns the host.
  http::Response serve(const http::Request& req) {
    if (req.uri.host.find("wish") != std::string::npos) return wish_server_.serve(req);
    return geek_server_.serve(req);
  }

  // Full transaction + prefetch drain against the real origins.
  bool run(const std::string& user, const http::Request& req) {
    Session session = engine_->session(user, now_);
    Decision d = session.on_request(req, now_);
    ++now_;
    if (d.served) return true;
    Decision r = session.on_response(req, serve(req), now_);
    std::vector<PrefetchJob> jobs = std::move(d.prefetches);
    for (auto& job : r.prefetches) jobs.push_back(std::move(job));
    while (!jobs.empty()) {
      std::vector<PrefetchJob> next;
      for (const auto& job : jobs) {
        Decision f = session.on_prefetch_response(job, serve(job.request), now_, 100.0);
        for (auto& follow : f.prefetches) next.push_back(std::move(follow));
      }
      for (auto& job : session.take_prefetches(now_)) next.push_back(std::move(job));
      jobs = std::move(next);
    }
    return false;
  }

  http::Request feed_request(const apps::AppSpec& app) {
    apps::OriginServer& server = app.name == "Wish" ? wish_server_ : geek_server_;
    (void)server;
    http::Request req;
    req.method = "POST";
    req.uri = http::Uri::parse("https://" + app.endpoint("feed").host + "/api/get-feed");
    req.uri.add_query_param("offset", "0");
    req.uri.add_query_param("count", std::to_string(app.endpoint("feed").list_count));
    req.headers.set("Cookie", "c-" + app.name);
    req.headers.set("User-Agent", "Mozilla/5.0");
    req.set_form_fields({{"_client", "android"}, {"_ver", "4.13.0"}});
    return req;
  }

  http::Request detail_request(const apps::AppSpec& app, const std::string& user) {
    // Build the detail request the way the app would, from the feed response
    // currently cached at the origin (deterministic).
    const auto feed_resp = serve(feed_request(app));
    const auto body = json::parse(feed_resp.body);
    http::Request req;
    req.method = "POST";
    req.uri = http::Uri::parse("https://" + app.endpoint("detail").host + "/product/get");
    req.headers.set("Cookie", "c-" + app.name);
    req.headers.set("User-Agent", "Mozilla/5.0");
    http::FormFields fields;
    fields.emplace_back("cid",
                        json::Path("data.items[0].id").resolve_first(body)->as_string());
    const auto& detail = app.endpoint("detail");
    for (const apps::FieldSpec& f : detail.fields) {
      if (f.name == "cid" || f.loc != FieldLocation::kBody) continue;
      if (f.conditional) continue;
      if (f.value.kind == apps::ValueSpec::Kind::kDep) {
        std::string path = f.value.dep_path;
        const auto star = path.find("[*]");
        if (star != std::string::npos) path.replace(star, 3, "[0]");
        fields.emplace_back(f.name, json::Path(path).resolve_first(body)->scalar_to_string());
      } else if (f.value.kind == apps::ValueSpec::Kind::kEnv) {
        fields.emplace_back(f.name, app.env_defaults.at(f.value.text));
      } else {
        fields.emplace_back(f.name, f.value.text);
      }
    }
    (void)user;
    req.set_form_fields(fields);
    return req;
  }

  apps::AppSpec wish_;
  apps::AppSpec geek_;
  apps::OriginServer wish_server_;
  apps::OriginServer geek_server_;
  SignatureSet combined_;
  ProxyConfig config_;
  std::unique_ptr<ProxyEngine> engine_;
  SimTime now_ = 0;
};

TEST_F(MultiAppFixture, CombinedSetHoldsBothApps) {
  EXPECT_EQ(combined_.size(), 120u + 118u);
  EXPECT_EQ(combined_.subset_for_app(wish_.package).size(), 120u);
  EXPECT_EQ(combined_.subset_for_app(geek_.package).size(), 118u);
}

TEST_F(MultiAppFixture, RequestsMatchOnlyTheirOwnApp) {
  const auto* wish_sig = combined_.match_request(
      feed_request(wish_), config_.app_for_host(feed_request(wish_).uri.host));
  ASSERT_NE(wish_sig, nullptr);
  EXPECT_EQ(wish_sig->app, wish_.package);
  const auto* geek_sig = combined_.match_request(
      feed_request(geek_), config_.app_for_host(feed_request(geek_).uri.host));
  ASSERT_NE(geek_sig, nullptr);
  EXPECT_EQ(geek_sig->app, geek_.package);
  EXPECT_NE(wish_sig->id, geek_sig->id);
}

TEST_F(MultiAppFixture, OneProxyAcceleratesBothApps) {
  // Same user runs both apps through the single proxy instance.
  run("u", feed_request(wish_));
  run("u", feed_request(geek_));
  // First detail per app teaches the run-time values...
  EXPECT_FALSE(run("u", detail_request(wish_, "u")));
  EXPECT_FALSE(run("u", detail_request(geek_, "u")));
  // ...after which re-fetching the feeds re-arms instances, and both apps'
  // detail requests are served from cache.
  run("u", feed_request(wish_));
  run("u", feed_request(geek_));
  EXPECT_TRUE(run("u", detail_request(wish_, "u")));
  EXPECT_TRUE(run("u", detail_request(geek_, "u")));
}

TEST_F(MultiAppFixture, AbsorbRejectsDuplicates) {
  SignatureSet dup;
  EXPECT_NO_THROW(dup.absorb(combined_.subset_for_app(wish_.package)));
  EXPECT_THROW(dup.absorb(combined_.subset_for_app(wish_.package)), InvalidArgumentError);
}

TEST_F(MultiAppFixture, IndexedDispatchAgreesWithLinearScan) {
  // 238 signatures across two apps: the dispatch index must pick exactly the
  // signature the linear scan would, with and without app filtering.
  std::vector<http::Request> probes{feed_request(wish_), feed_request(geek_),
                                    detail_request(wish_, "u"), detail_request(geek_, "u")};
  http::Request miss;
  miss.method = "GET";
  miss.uri = http::Uri::parse("https://nowhere.example/none");
  probes.push_back(miss);
  for (const http::Request& req : probes) {
    EXPECT_EQ(combined_.match_request(req), combined_.match_request_linear(req))
        << req.uri.host << req.uri.path;
    const std::string app = config_.app_for_host(req.uri.host);
    EXPECT_EQ(combined_.match_request(req, app), combined_.match_request_linear(req, app))
        << req.uri.host << req.uri.path;
  }
}

}  // namespace
}  // namespace appx::core
