// Tests for the sharded runtime: multi-threaded shard parallelism vs a
// single-shard reference, seed-fixed determinism, the fleet-wide metrics
// balance invariant, UserId interning/generation semantics, and
// EngineOptions validation. Run under ASan and TSan in CI.
#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <map>
#include <string>
#include <thread>
#include <tuple>
#include <vector>

#include "core/engine_options.hpp"
#include "core/proxy.hpp"
#include "core/session.hpp"
#include "core/sharded_proxy.hpp"
#include "wish_fixture.hpp"

namespace appx::core {
namespace {

using testfix::make_feed_request;
using testfix::make_feed_response;
using testfix::make_product_request;
using testfix::make_product_response;
using testfix::make_wish_set;

// Answer every surfaced prefetch job from a canned origin, chaining through
// the Decisions the completions produce, until the engine goes quiet.
void resolve_prefetches(ProxyLike& engine, std::vector<PrefetchJob> jobs, SimTime now) {
  while (!jobs.empty()) {
    std::vector<PrefetchJob> next;
    for (PrefetchJob& job : jobs) {
      http::Response resp;
      if (job.request.uri.path == "/product/get") {
        const auto fields = job.request.form_fields();
        resp = make_product_response("m_" + fields[0].second, 1500);
      } else if (job.request.uri.path == "/img") {
        resp.opaque_payload = kilobytes(300);
      } else {
        resp.body = "{}";
      }
      Decision chained;
      engine.on_prefetch_response(job.uid, job, resp, now, 100.0, &chained);
      for (PrefetchJob& j : chained.prefetches) next.push_back(std::move(j));
    }
    jobs = std::move(next);
  }
}

// The canonical wish workload for one user: feed -> product(a) teaches the
// run-time values and fans out sibling prefetches -> product(b)/product(c)
// should come back from the cache. Returns the number of cache hits seen.
std::size_t drive_user(ProxyLike& engine, const std::string& user) {
  Session session = engine.session(user, 0);
  std::size_t hits = 0;

  Decision feed = session.on_request(make_feed_request(), 0);
  EXPECT_EQ(feed.served, nullptr);
  Decision learned = session.on_response(make_feed_request(), make_feed_response({"a", "b", "c"}), 0);
  resolve_prefetches(engine, std::move(learned.prefetches), 0);

  Decision first = session.on_request(make_product_request("a"), 1);
  EXPECT_EQ(first.served, nullptr) << "run-time values unknown before the first product";
  Decision taught = session.on_response(make_product_request("a"), make_product_response("m", 1), 1);
  resolve_prefetches(engine, std::move(taught.prefetches), 1);

  for (const std::string cid : {"b", "c"}) {
    Decision d = session.on_request(make_product_request(cid), 2);
    if (d.served != nullptr) ++hits;
    resolve_prefetches(engine, std::move(d.prefetches), 2);
  }
  return hits;
}

TEST(ShardedProxy, UsersLandOnStableShards) {
  const SignatureSet set = make_wish_set();
  ProxyConfig config;
  EngineOptions options;
  options.shards = 4;
  ShardedProxyEngine engine(&set, &config, options);
  ASSERT_EQ(engine.shard_count(), 4u);

  for (int i = 0; i < 32; ++i) {
    const std::string user = "user" + std::to_string(i);
    const UserId id = engine.resolve_user(user, 0);
    EXPECT_TRUE(id.valid());
    EXPECT_EQ(id.shard(), engine.shard_index_for(user));
    EXPECT_EQ(id.name(), user);
    // Resolving again returns the same identity (same slot, same generation).
    const UserId again = engine.resolve_user(user, 0);
    EXPECT_EQ(again.shard(), id.shard());
    EXPECT_EQ(again.slot(), id.slot());
    EXPECT_EQ(again.generation(), id.generation());
  }
  EXPECT_EQ(engine.user_count(), 32u);
}

TEST(ShardedProxy, MultiThreadedDisjointUsersMatchSingleShardRun) {
  const SignatureSet set = make_wish_set();
  ProxyConfig config;
  config.default_expiration = seconds(3600);

  constexpr int kThreads = 8;
  constexpr int kUsersPerThread = 4;

  // Sharded engine driven by K threads over disjoint users: no external
  // locking — the shards synchronise themselves.
  EngineOptions options;
  options.shards = 4;
  options.seed = 11;
  ShardedProxyEngine sharded(&set, &config, options);
  ASSERT_TRUE(sharded.thread_safe());

  std::atomic<std::size_t> total_hits{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int u = 0; u < kUsersPerThread; ++u) {
        const std::string user = "user" + std::to_string(t) + "_" + std::to_string(u);
        total_hits += drive_user(sharded, user);
      }
    });
  }
  for (std::thread& thread : threads) thread.join();

  // Reference: one single-shard engine, same workload, single-threaded.
  // Per-user isolation means every user's end state must be identical.
  ProxyEngine reference(&set, &config, 11);
  std::size_t reference_hits = 0;
  for (int t = 0; t < kThreads; ++t) {
    for (int u = 0; u < kUsersPerThread; ++u) {
      reference_hits += drive_user(reference, "user" + std::to_string(t) + "_" + std::to_string(u));
    }
  }

  EXPECT_EQ(total_hits.load(), reference_hits);
  EXPECT_EQ(total_hits.load(),
            static_cast<std::size_t>(2 * kThreads * kUsersPerThread))
      << "both sibling products must be served from the prefetch cache";
  EXPECT_EQ(sharded.user_count(), static_cast<std::size_t>(kThreads * kUsersPerThread));
  EXPECT_EQ(sharded.user_count(), reference.user_count());

  // Per-user cache state is identical between the parallel sharded run and
  // the serial single-shard run.
  for (int t = 0; t < kThreads; ++t) {
    for (int u = 0; u < kUsersPerThread; ++u) {
      const std::string user = "user" + std::to_string(t) + "_" + std::to_string(u);
      const PrefetchCache* sharded_cache = sharded.cache_for(user);
      const PrefetchCache* reference_cache = reference.cache_for(user);
      ASSERT_NE(sharded_cache, nullptr) << user;
      ASSERT_NE(reference_cache, nullptr) << user;
      EXPECT_EQ(sharded_cache->size(), reference_cache->size()) << user;
      EXPECT_EQ(sharded_cache->bytes(), reference_cache->bytes()) << user;
      EXPECT_NE(sharded.learning_for(user), nullptr) << user;
    }
  }

  // Fleet-wide totals match the serial run.
  const ProxyStats& sharded_stats = sharded.stats();
  const ProxyStats& reference_stats = reference.stats();
  EXPECT_EQ(sharded_stats.client_requests, reference_stats.client_requests);
  EXPECT_EQ(sharded_stats.cache_hits, reference_stats.cache_hits);
  EXPECT_EQ(sharded_stats.prefetches_issued, reference_stats.prefetches_issued);
  EXPECT_EQ(sharded_stats.prefetch_responses, reference_stats.prefetch_responses);
}

TEST(ShardedProxy, BalanceInvariantHoldsAcrossShardsUnderFailuresAndDrops) {
  const SignatureSet set = make_wish_set();
  ProxyConfig config;
  EngineOptions options;
  options.shards = 3;
  ShardedProxyEngine engine(&set, &config, options);

  constexpr int kThreads = 6;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      const std::string user = "bal" + std::to_string(t);
      Session session = engine.session(user, 0);
      session.on_request(make_feed_request(), 0);
      Decision learned =
          session.on_response(make_feed_request(), make_feed_response({"a", "b", "c", "d"}), 0);
      session.on_request(make_product_request("a"), 1);
      Decision taught =
          session.on_response(make_product_request("a"), make_product_response("m", 1), 1);
      std::vector<PrefetchJob> jobs = std::move(learned.prefetches);
      for (PrefetchJob& j : taught.prefetches) jobs.push_back(std::move(j));
      // Resolve each issued job exactly once, mixing all three outcomes.
      std::size_t n = 0;
      while (!jobs.empty()) {
        std::vector<PrefetchJob> next;
        for (PrefetchJob& job : jobs) {
          Decision chained;
          switch (n++ % 3) {
            case 0: {  // success
              http::Response ok = make_product_response("m_x", 9);
              engine.on_prefetch_response(job.uid, job, ok, 2, 50.0, &chained);
              break;
            }
            case 1: {  // failure (non-2xx)
              http::Response fail;
              fail.status = 503;
              engine.on_prefetch_response(job.uid, job, fail, 2, 50.0, &chained);
              break;
            }
            default: {  // dropped; the freed window slot may surface more jobs
              engine.on_prefetch_dropped(job.uid, job, 2);
              engine.pump(job.uid, 2, &chained);
              break;
            }
          }
          for (PrefetchJob& j : chained.prefetches) next.push_back(std::move(j));
        }
        jobs = std::move(next);
      }
    });
  }
  for (std::thread& thread : threads) thread.join();

  const ProxyStats& stats = engine.stats();
  EXPECT_GT(stats.prefetches_issued, 0u);
  EXPECT_GT(stats.prefetch_failures, 0u);
  EXPECT_GT(stats.prefetches_dropped, 0u);
  // Every issued job resolved exactly once — fleet-wide, counted in the one
  // shared registry all shards contribute deltas to.
  EXPECT_EQ(stats.prefetch_responses + stats.prefetch_failures + stats.prefetches_dropped,
            stats.prefetches_issued);
  const obs::MetricsRegistry* registry = engine.metrics();
  ASSERT_NE(registry, nullptr);
  EXPECT_EQ(registry->counter_value("appx_prefetch_responses_total") +
                registry->counter_value("appx_prefetch_failures_total") +
                registry->counter_value("appx_prefetch_dropped_total"),
            registry->counter_value("appx_prefetch_issued_total"));
}

TEST(ShardedProxy, SeedFixedRunsAreReproduciblePerShard) {
  const SignatureSet set = make_wish_set();
  ProxyConfig config;
  // Make the probability coin matter: issued counts now depend on the
  // per-shard seed streams, which must be derived deterministically.
  config.global_probability = 0.5;

  const auto run = [&](std::uint64_t seed) {
    EngineOptions options;
    options.shards = 4;
    options.seed = seed;
    ShardedProxyEngine engine(&set, &config, options);
    for (int i = 0; i < 12; ++i) drive_user(engine, "det" + std::to_string(i));
    std::map<std::string, std::size_t> cache_sizes;
    for (int i = 0; i < 12; ++i) {
      const std::string user = "det" + std::to_string(i);
      const PrefetchCache* cache = engine.cache_for(user);
      cache_sizes[user] = cache == nullptr ? 0 : cache->size();
    }
    const ProxyStats& stats = engine.stats();
    return std::make_tuple(stats.prefetches_issued, stats.cache_hits,
                           stats.skipped_probability, cache_sizes);
  };

  const auto first = run(99);
  const auto second = run(99);
  EXPECT_EQ(first, second) << "same seed, same shard layout -> identical outcomes";
  // The coin was actually exercised (otherwise this test proves nothing).
  EXPECT_GT(std::get<2>(first), 0u);
}

TEST(ShardedProxy, StaleUserIdIsTransparentlyReinterned) {
  const SignatureSet set = make_wish_set();
  ProxyConfig config;
  config.user_idle_timeout = seconds(30);
  EngineOptions options = EngineOptions::from_config(config);
  options.shards = 2;
  ShardedProxyEngine engine(&set, &config, options);

  UserId stale = engine.resolve_user("sleeper", 0);
  const std::uint32_t old_generation = stale.generation();
  // Another user on the SAME shard arrives much later; the idle sweep evicts
  // "sleeper" and recycles its slot under a bumped generation.
  const std::size_t shard = engine.shard_index_for("sleeper");
  std::string neighbour;
  for (int i = 0;; ++i) {
    neighbour = "n" + std::to_string(i);
    if (engine.shard_index_for(neighbour) == shard && neighbour != "sleeper") break;
  }
  engine.resolve_user(neighbour, minutes(10));

  // Driving an event with the stale handle must not throw and must update
  // the handle in place to the re-interned identity.
  Decision d;
  engine.on_request(stale, make_feed_request(), minutes(10) + 1, &d);
  EXPECT_TRUE(stale.valid());
  EXPECT_EQ(stale.name(), "sleeper");
  EXPECT_EQ(stale.shard(), shard);
  EXPECT_NE(engine.cache_for("sleeper"), nullptr);
  // Either the slot was recycled (generation bump) or a fresh slot was used;
  // both are fine as long as events route to live state.
  EXPECT_TRUE(stale.generation() != old_generation || stale.slot() != 0 ||
              engine.user_count() >= 1);
}

TEST(ShardedProxy, InvalidUserIdIsRejected) {
  const SignatureSet set = make_wish_set();
  ProxyConfig config;
  EngineOptions options;
  options.shards = 2;
  ShardedProxyEngine engine(&set, &config, options);
  UserId unresolved;
  Decision d;
  EXPECT_THROW(engine.on_request(unresolved, make_feed_request(), 0, &d), InvalidArgumentError);
}

// --- EngineOptions::validate ------------------------------------------------

TEST(EngineOptions, DefaultsValidate) {
  const EngineOptions options;
  const util::Error error = options.validate();
  EXPECT_TRUE(error.ok()) << error.message();
}

TEST(EngineOptions, ValidateNamesTheBadField) {
  const auto expect_rejects = [](EngineOptions options, const std::string& field) {
    const util::Error error = options.validate();
    ASSERT_FALSE(error.ok()) << "expected rejection for " << field;
    EXPECT_NE(error.message().find(field), std::string::npos) << error.message();
  };

  EngineOptions zero_window;
  zero_window.max_outstanding_prefetches = 0;
  expect_rejects(zero_window, "max_outstanding_prefetches");

  EngineOptions bad_idle;
  bad_idle.user_idle_timeout = Duration{0};
  expect_rejects(bad_idle, "user_idle_timeout");

  EngineOptions nan_weight;
  nan_weight.scheduler_time_weight = std::nan("");
  expect_rejects(nan_weight, "scheduler_time_weight");

  EngineOptions negative_weight;
  negative_weight.scheduler_hit_weight = -1.0;
  expect_rejects(negative_weight, "scheduler_hit_weight");

  EngineOptions negative_timeout;
  negative_timeout.io_timeout = -seconds(1);
  expect_rejects(negative_timeout, "timeouts");

  EngineOptions zero_workers;
  zero_workers.prefetch_workers = 0;
  expect_rejects(zero_workers, "prefetch_workers");

  EngineOptions negative_backlog;
  negative_backlog.listen_backlog = -1;
  expect_rejects(negative_backlog, "listen_backlog");

  EngineOptions zero_head;
  zero_head.reader_limits.max_head_bytes = 0;
  expect_rejects(zero_head, "max_head_bytes");

  EngineOptions zero_trace;
  zero_trace.trace_ring_capacity = 0;
  expect_rejects(zero_trace, "trace_ring_capacity");

  EngineOptions bad_snapshot;
  bad_snapshot.metrics_snapshot_path = "/tmp/snap.json";
  bad_snapshot.metrics_snapshot_interval = 0;
  expect_rejects(bad_snapshot, "metrics_snapshot_interval");
}

TEST(EngineOptions, EnginesRejectInvalidOptionsAtConstruction) {
  const SignatureSet set = make_wish_set();
  ProxyConfig config;
  EngineOptions bad;
  bad.prefetch_workers = 0;
  EXPECT_THROW(ProxyEngine(&set, &config, bad), InvalidArgumentError);
  EXPECT_THROW(ShardedProxyEngine(&set, &config, bad), InvalidArgumentError);
}

TEST(EngineOptions, FromConfigSnapshotsRuntimeCaps) {
  ProxyConfig config;
  config.max_outstanding_prefetches = 7;
  config.cache_max_entries = 11;
  config.cache_max_bytes = 1234;
  config.max_users = 5;
  config.user_idle_timeout = seconds(42);
  config.scheduler_time_weight = 2.0;
  config.scheduler_hit_weight = 3.0;
  const EngineOptions options = EngineOptions::from_config(config);
  EXPECT_EQ(options.max_outstanding_prefetches, 7u);
  EXPECT_EQ(options.cache_max_entries, 11u);
  EXPECT_EQ(options.cache_max_bytes, 1234);
  EXPECT_EQ(options.max_users, 5u);
  EXPECT_EQ(options.user_idle_timeout, seconds(42));
  EXPECT_DOUBLE_EQ(options.scheduler_time_weight, 2.0);
  EXPECT_DOUBLE_EQ(options.scheduler_hit_weight, 3.0);
}

}  // namespace
}  // namespace appx::core
