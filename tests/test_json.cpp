// Unit tests for the JSON value model, parser, serialiser and path queries.
#include <gtest/gtest.h>

#include "json/json.hpp"
#include "util/error.hpp"

namespace appx::json {
namespace {

// --- parsing ---------------------------------------------------------------------

TEST(JsonParse, Scalars) {
  EXPECT_TRUE(parse("null").is_null());
  EXPECT_EQ(parse("true").as_bool(), true);
  EXPECT_EQ(parse("false").as_bool(), false);
  EXPECT_EQ(parse("42").as_int(), 42);
  EXPECT_EQ(parse("-7").as_int(), -7);
  EXPECT_DOUBLE_EQ(parse("2.5").as_double(), 2.5);
  EXPECT_DOUBLE_EQ(parse("1e3").as_double(), 1000.0);
  EXPECT_EQ(parse("\"hi\"").as_string(), "hi");
}

TEST(JsonParse, IntVsDoubleDistinction) {
  EXPECT_TRUE(parse("3").is_int());
  EXPECT_TRUE(parse("3.0").is_double());
  EXPECT_TRUE(parse("3e0").is_double());
}

TEST(JsonParse, NestedStructure) {
  const Value v = parse(R"({"data":{"products":[{"id":"09cf"},{"id":"3gf3"}]}})");
  EXPECT_EQ(v.at("data").at("products").size(), 2u);
  EXPECT_EQ(v.at("data").at("products").at(0).at("id").as_string(), "09cf");
}

TEST(JsonParse, WhitespaceTolerated) {
  const Value v = parse("  {\n \"a\" : [ 1 , 2 ] }\t");
  EXPECT_EQ(v.at("a").size(), 2u);
}

TEST(JsonParse, StringEscapes) {
  EXPECT_EQ(parse(R"("a\"b\\c\nd\te")").as_string(), "a\"b\\c\nd\te");
  EXPECT_EQ(parse(R"("Aé")").as_string(), "A\xc3\xa9");
  EXPECT_EQ(parse(R"("€")").as_string(), "\xe2\x82\xac");  // euro sign
}

TEST(JsonParse, EmptyContainers) {
  EXPECT_TRUE(parse("{}").is_object());
  EXPECT_EQ(parse("{}").size(), 0u);
  EXPECT_TRUE(parse("[]").is_array());
  EXPECT_EQ(parse("[]").size(), 0u);
}

TEST(JsonParse, Errors) {
  EXPECT_THROW(parse(""), ParseError);
  EXPECT_THROW(parse("{"), ParseError);
  EXPECT_THROW(parse("[1,]"), ParseError);
  EXPECT_THROW(parse("{\"a\":}"), ParseError);
  EXPECT_THROW(parse("\"unterminated"), ParseError);
  EXPECT_THROW(parse("tru"), ParseError);
  EXPECT_THROW(parse("1 2"), ParseError);
  EXPECT_THROW(parse("{'single':1}"), ParseError);
  EXPECT_THROW(parse("-"), ParseError);
}

// --- serialisation ------------------------------------------------------------------

TEST(JsonDump, CompactRoundTrip) {
  const std::string doc = R"({"a":[1,2.5,"x",true,null],"b":{"c":-3}})";
  const Value v = parse(doc);
  EXPECT_EQ(parse(v.dump()), v);
}

TEST(JsonDump, CanonicalKeyOrder) {
  // std::map ordering: keys serialise sorted regardless of insertion order.
  Object o;
  o["zebra"] = 1;
  o["alpha"] = 2;
  EXPECT_EQ(Value(std::move(o)).dump(), R"({"alpha":2,"zebra":1})");
}

TEST(JsonDump, EscapesControlCharacters) {
  EXPECT_EQ(Value("a\"b\n\x01").dump(), "\"a\\\"b\\n\\u0001\"");
}

TEST(JsonDump, PrettyPrintingParsesBack) {
  const Value v = parse(R"({"a":[1,2],"b":"x"})");
  const std::string pretty = v.dump(2);
  EXPECT_NE(pretty.find('\n'), std::string::npos);
  EXPECT_EQ(parse(pretty), v);
}

// --- value API ------------------------------------------------------------------------

TEST(JsonValue, TypeMismatchThrows) {
  const Value v = parse("[1]");
  EXPECT_THROW(v.as_object(), InvalidStateError);
  EXPECT_THROW(v.as_string(), InvalidStateError);
  EXPECT_THROW(v.at("k"), InvalidStateError);
  EXPECT_THROW(parse("3").as_bool(), InvalidStateError);
  EXPECT_THROW(parse("\"s\"").as_int(), InvalidStateError);
}

TEST(JsonValue, AtMissingMemberThrows) {
  const Value v = parse(R"({"a":1})");
  EXPECT_THROW(v.at("b"), NotFoundError);
  EXPECT_EQ(v.find("b"), nullptr);
  EXPECT_NE(v.find("a"), nullptr);
}

TEST(JsonValue, ArrayIndexOutOfRangeThrows) {
  const Value v = parse("[1,2]");
  EXPECT_THROW(v.at(std::size_t{2}), NotFoundError);
}

TEST(JsonValue, SubscriptCreatesMembers) {
  Value v;  // null
  v["a"]["b"] = 5;
  EXPECT_EQ(v.at("a").at("b").as_int(), 5);
}

TEST(JsonValue, ScalarToString) {
  EXPECT_EQ(parse("42").scalar_to_string(), "42");
  EXPECT_EQ(parse("true").scalar_to_string(), "true");
  EXPECT_EQ(parse("\"id9\"").scalar_to_string(), "id9");
  EXPECT_EQ(parse("null").scalar_to_string(), "null");
  EXPECT_THROW(parse("[]").scalar_to_string(), InvalidStateError);
}

TEST(JsonValue, AsDoubleAcceptsInt) { EXPECT_DOUBLE_EQ(parse("3").as_double(), 3.0); }

// --- paths --------------------------------------------------------------------------

const char* kFeed = R"({
  "data": {
    "products": [
      {"product_info": {"id": "09cf", "price": 1200}, "aspect": 1.5},
      {"product_info": {"id": "3gf3", "price": 800}, "aspect": 1.0},
      {"product_info": {"id": "vm98", "price": 50}, "aspect": 2.0}
    ],
    "contest": {"cache": "x"}
  }
})";

TEST(JsonPath, SimpleMemberChain) {
  const Value v = parse(kFeed);
  const Path p("data.contest.cache");
  const Value* r = p.resolve_first(v);
  ASSERT_NE(r, nullptr);
  EXPECT_EQ(r->as_string(), "x");
}

TEST(JsonPath, WildcardCollectsAllElements) {
  const Value v = parse(kFeed);
  const Path p("data.products[*].product_info.id");
  EXPECT_TRUE(p.is_multi());
  const auto all = p.resolve(v);
  ASSERT_EQ(all.size(), 3u);
  EXPECT_EQ(all[0]->as_string(), "09cf");
  EXPECT_EQ(all[2]->as_string(), "vm98");
}

TEST(JsonPath, NumericIndex) {
  const Value v = parse(kFeed);
  const Path p("data.products[1].product_info.price");
  const Value* r = p.resolve_first(v);
  ASSERT_NE(r, nullptr);
  EXPECT_EQ(r->as_int(), 800);
}

TEST(JsonPath, IndexOutOfRangeResolvesEmpty) {
  const Value v = parse(kFeed);
  EXPECT_TRUE(Path("data.products[9].aspect").resolve(v).empty());
}

TEST(JsonPath, MissingMemberResolvesEmpty) {
  const Value v = parse(kFeed);
  EXPECT_TRUE(Path("data.nothing.here").resolve(v).empty());
  EXPECT_EQ(Path("data.nothing").resolve_first(v), nullptr);
}

TEST(JsonPath, WildcardOnNonArrayResolvesEmpty) {
  const Value v = parse(kFeed);
  EXPECT_TRUE(Path("data.contest[*].x").resolve(v).empty());
}

TEST(JsonPath, ParseErrors) {
  EXPECT_THROW(Path(""), ParseError);
  EXPECT_THROW(Path("a..b"), ParseError);
  EXPECT_THROW(Path("a["), ParseError);
  EXPECT_THROW(Path("a[x]"), ParseError);
  EXPECT_THROW(Path("a."), ParseError);
  EXPECT_THROW(Path("a[]"), ParseError);
}

TEST(JsonPath, TextPreserved) {
  const Path p("data.products[*].id");
  EXPECT_EQ(p.text(), "data.products[*].id");
}

TEST(JsonSetAt, CreatesIntermediateStructure) {
  Value root;
  set_at(root, Path("data.items[2].id"), Value("x"));
  EXPECT_EQ(root.at("data").at("items").size(), 3u);
  EXPECT_EQ(root.at("data").at("items").at(2).at("id").as_string(), "x");
  EXPECT_TRUE(root.at("data").at("items").at(0).is_null());
}

TEST(JsonSetAt, OverwritesExisting) {
  Value root = parse(R"({"a":{"b":1}})");
  set_at(root, Path("a.b"), Value(2));
  EXPECT_EQ(root.at("a").at("b").as_int(), 2);
}

TEST(JsonSetAt, WildcardRejected) {
  Value root;
  EXPECT_THROW(set_at(root, Path("a[*].b"), Value(1)), InvalidArgumentError);
}

}  // namespace
}  // namespace appx::json
