// Unit tests for the discrete-event simulator and link model.
#include <gtest/gtest.h>

#include <vector>

#include "sim/simulator.hpp"
#include "util/error.hpp"

namespace appx::sim {
namespace {

TEST(Simulator, EventsRunInTimeOrder) {
  Simulator sim;
  std::vector<int> order;
  sim.schedule(milliseconds(30), [&] { order.push_back(3); });
  sim.schedule(milliseconds(10), [&] { order.push_back(1); });
  sim.schedule(milliseconds(20), [&] { order.push_back(2); });
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(sim.now(), milliseconds(30));
  EXPECT_EQ(sim.events_processed(), 3u);
}

TEST(Simulator, SimultaneousEventsAreFifo) {
  Simulator sim;
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) {
    sim.schedule(milliseconds(10), [&order, i] { order.push_back(i); });
  }
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(Simulator, NestedScheduling) {
  Simulator sim;
  SimTime inner_time = -1;
  sim.schedule(milliseconds(5), [&] {
    sim.schedule(milliseconds(7), [&] { inner_time = sim.now(); });
  });
  sim.run();
  EXPECT_EQ(inner_time, milliseconds(12));
}

TEST(Simulator, RunUntilAdvancesClockOnly) {
  Simulator sim;
  int fired = 0;
  sim.schedule(milliseconds(10), [&] { ++fired; });
  sim.schedule(milliseconds(30), [&] { ++fired; });
  sim.run_until(milliseconds(20));
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(sim.now(), milliseconds(20));
  EXPECT_EQ(sim.events_pending(), 1u);
  sim.run();
  EXPECT_EQ(fired, 2);
}

TEST(Simulator, NegativeDelayRejected) {
  Simulator sim;
  EXPECT_THROW(sim.schedule(-1, [] {}), InvalidArgumentError);
}

TEST(Link, PropagationDelayOnly) {
  Simulator sim;
  Link link(&sim, milliseconds(50), 0);  // infinite bandwidth
  SimTime arrival = -1;
  link.send(megabytes(10), [&] { arrival = sim.now(); });
  sim.run();
  EXPECT_EQ(arrival, milliseconds(50));
}

TEST(Link, SerializationDelayAddsToLatency) {
  Simulator sim;
  Link link(&sim, milliseconds(10), mbps(8));  // 1 MB/s
  SimTime arrival = -1;
  link.send(1'000'000, [&] { arrival = sim.now(); });  // 1 MB -> 1 s
  sim.run();
  EXPECT_EQ(arrival, milliseconds(10) + seconds(1));
}

TEST(Link, TransfersQueueFifoBehindEachOther) {
  Simulator sim;
  Link link(&sim, milliseconds(10), mbps(8));  // 1 MB/s
  std::vector<SimTime> arrivals;
  link.send(500'000, [&] { arrivals.push_back(sim.now()); });  // 0.5 s
  link.send(500'000, [&] { arrivals.push_back(sim.now()); });  // waits for first
  sim.run();
  ASSERT_EQ(arrivals.size(), 2u);
  EXPECT_EQ(arrivals[0], milliseconds(510));
  EXPECT_EQ(arrivals[1], milliseconds(1010));
}

TEST(Link, BottleneckFreesOverTime) {
  Simulator sim;
  Link link(&sim, 0, mbps(8));
  SimTime first = -1, second = -1;
  link.send(1'000'000, [&] { first = sim.now(); });
  // Sent 2 s later: the link is idle again, no queueing.
  sim.schedule(seconds(2), [&] { link.send(1'000'000, [&] { second = sim.now(); }); });
  sim.run();
  EXPECT_EQ(first, seconds(1));
  EXPECT_EQ(second, seconds(3));
}

TEST(Link, CountsTraffic) {
  Simulator sim;
  Link link(&sim, 0, 0);
  link.send(100, [] {});
  link.send(250, [] {});
  sim.run();
  EXPECT_EQ(link.bytes_carried(), 350);
  EXPECT_EQ(link.messages_carried(), 2u);
}

TEST(Link, RejectsBadArguments) {
  Simulator sim;
  EXPECT_THROW(Link(nullptr, 0, 0), InvalidArgumentError);
  EXPECT_THROW(Link(&sim, -1, 0), InvalidArgumentError);
  Link link(&sim, 0, 0);
  EXPECT_THROW(link.send(-5, [] {}), InvalidArgumentError);
}

TEST(Channel, RttSplitsAcrossDirections) {
  Simulator sim;
  Channel chan(&sim, milliseconds(55), mbps(25));
  EXPECT_EQ(chan.rtt(), milliseconds(55));
  SimTime up_arrival = -1, down_arrival = -1;
  chan.up().send(0, [&] { up_arrival = sim.now(); });
  chan.down().send(0, [&] { down_arrival = sim.now(); });
  sim.run();
  // Each direction carries half the RTT; integer microseconds.
  EXPECT_NEAR(static_cast<double>(up_arrival), static_cast<double>(milliseconds(27.5)), 1.0);
  EXPECT_EQ(up_arrival, down_arrival);
}

TEST(Channel, RoundTripEchoTakesRtt) {
  Simulator sim;
  Channel chan(&sim, milliseconds(100), 0);
  SimTime done = -1;
  chan.up().send(0, [&] { chan.down().send(0, [&] { done = sim.now(); }); });
  sim.run();
  EXPECT_EQ(done, milliseconds(100));
}

}  // namespace
}  // namespace appx::sim
