// Unit tests for the cost-aware prefetch policy engine (DESIGN.md §5j):
// per-signature value model, load-adaptive admission, token-bucket budget
// pacing, and learned expiry.
#include <gtest/gtest.h>

#include "policy/admission.hpp"
#include "policy/model.hpp"
#include "policy/options.hpp"
#include "policy/pacer.hpp"

namespace appx::policy {
namespace {

// ---------------------------------------------------------------- model ----

TEST(SignatureModel, UnknownSignatureGetsExploratoryPriors) {
  SignatureModel model;
  const Estimate e = model.estimate("app", "never-seen");
  EXPECT_DOUBLE_EQ(e.p_use, 0.5);
  EXPECT_GT(e.saving_ms, 0);
  EXPECT_GT(e.bytes, 0);
  EXPECT_EQ(e.issued, 0u);
}

TEST(SignatureModel, PUseCountsAtIssueTime) {
  // Issues are counted when admitted, not when the response arrives: a
  // synchronous fan-out burst must see its own issues in p_use immediately.
  SignatureModel model;
  model.on_issued("app", "sig");
  model.on_issued("app", "sig");
  model.on_issued("app", "sig");
  // Laplace smoothing: (0 + 1) / (3 + 2).
  EXPECT_DOUBLE_EQ(model.estimate("app", "sig").p_use, 1.0 / 5.0);
  EXPECT_EQ(model.estimate("app", "sig").issued, 3u);

  // First uses restore the estimate.
  model.on_first_use("app", "sig");
  model.on_first_use("app", "sig");
  EXPECT_DOUBLE_EQ(model.estimate("app", "sig").p_use, 3.0 / 5.0);
  EXPECT_EQ(model.used("app", "sig"), 2u);
}

TEST(SignatureModel, PUseDecaysWithinUnusedBurst) {
  // The admission value of an unproven signature must fall as a burst of
  // same-signature prefetches is admitted — this is what self-limits fan-out.
  SignatureModel model;
  double prev = model.estimate("app", "burst").p_use;
  for (int i = 0; i < 10; ++i) {
    model.on_issued("app", "burst");
    const double cur = model.estimate("app", "burst").p_use;
    EXPECT_LT(cur, prev);
    prev = cur;
  }
  EXPECT_NEAR(prev, 1.0 / 12.0, 1e-9);
}

TEST(SignatureModel, ResponseUpdatesCostAndSavingEstimates) {
  SignatureModel model;
  model.on_prefetched("app", "sig", 10240, 120.0);
  const Estimate e = model.estimate("app", "sig");
  EXPECT_DOUBLE_EQ(e.saving_ms, 120.0);
  EXPECT_DOUBLE_EQ(e.bytes, 10240.0);

  // EWMA: a second observation moves the estimate toward it, not onto it.
  model.on_prefetched("app", "sig", 0, 0.0);
  const Estimate e2 = model.estimate("app", "sig");
  EXPECT_GT(e2.saving_ms, 0.0);
  EXPECT_LT(e2.saving_ms, 120.0);
}

TEST(SignatureModel, WastedEntriesAreCounted) {
  SignatureModel model;
  model.on_wasted("app", "sig", 4096);
  model.on_wasted("app", "sig", 4096);
  EXPECT_EQ(model.wasted("app", "sig"), 2u);
}

TEST(SignatureModel, LearnedExpiryFromContentChanges) {
  SignatureModel model;
  // No samples yet -> nothing learned.
  EXPECT_FALSE(model.learned_expiry("app", "sig", seconds(1)).has_value());

  const std::uint64_t key = 42;
  model.observe_content("app", "sig", key, /*body_hash=*/1, /*now=*/0);
  // Same body 10 s later: still no change observed.
  model.observe_content("app", "sig", key, 1, seconds(10));
  EXPECT_FALSE(model.learned_expiry("app", "sig", seconds(1)).has_value());

  // Body changed 20 s after the first sample: one 20 s interval.
  model.observe_content("app", "sig", key, 2, seconds(20));
  const auto learned = model.learned_expiry("app", "sig", seconds(1));
  ASSERT_TRUE(learned.has_value());
  EXPECT_EQ(*learned, seconds(10));  // half the observed change interval
}

TEST(SignatureModel, LearnedExpiryFloors) {
  SignatureModel model;
  model.observe_content("app", "sig", 7, 1, 0);
  model.observe_content("app", "sig", 7, 2, seconds(1));  // 1 s interval -> 0.5 s half
  const auto learned = model.learned_expiry("app", "sig", seconds(5));
  ASSERT_TRUE(learned.has_value());
  EXPECT_EQ(*learned, seconds(5));
}

TEST(SignatureModel, DifferentKeyResetsContentSample) {
  // Fan-out items of one signature have different keys; switching keys must
  // not fabricate a change interval.
  SignatureModel model;
  model.observe_content("app", "sig", /*key=*/1, /*body=*/10, 0);
  model.observe_content("app", "sig", /*key=*/2, /*body=*/20, seconds(30));
  EXPECT_FALSE(model.learned_expiry("app", "sig", seconds(1)).has_value());
}

TEST(SignatureModel, EntriesAreKeyedPerApp) {
  // Two apps may reuse a signature id; their evidence must not mix — that is
  // the point of per-app (not per-shard) keying.
  SignatureModel model;
  model.on_issued("com.app.a", "sig");
  model.on_issued("com.app.a", "sig");
  model.on_first_use("com.app.a", "sig");
  EXPECT_DOUBLE_EQ(model.estimate("com.app.a", "sig").p_use, 2.0 / 4.0);
  EXPECT_DOUBLE_EQ(model.estimate("com.app.b", "sig").p_use, 0.5);  // priors
  EXPECT_EQ(model.estimate("com.app.b", "sig").issued, 0u);
  EXPECT_EQ(model.tracked_signatures(), 1u);
}

TEST(SignatureModel, PersistRestoreRoundTripsEstimates) {
  SignatureModel model;
  model.on_issued("app", "sig");
  model.on_issued("app", "sig");
  model.on_first_use("app", "sig");
  model.on_prefetched("app", "sig", 10240, 120.0);
  model.on_wasted("app", "sig", 4096);
  model.observe_content("app", "sig", /*key=*/7, /*body=*/1, 0);
  model.observe_content("app", "sig", 7, 2, seconds(20));

  ByteWriter out;
  model.persist(out);
  SignatureModel restored;
  ByteReader in(out.data());
  restored.restore(in, SignatureModel::kPersistVersion, /*now=*/minutes(5));

  const Estimate a = model.estimate("app", "sig");
  const Estimate b = restored.estimate("app", "sig");
  EXPECT_DOUBLE_EQ(a.p_use, b.p_use);
  EXPECT_DOUBLE_EQ(a.saving_ms, b.saving_ms);
  EXPECT_DOUBLE_EQ(a.bytes, b.bytes);
  EXPECT_EQ(a.issued, b.issued);
  EXPECT_EQ(restored.used("app", "sig"), 1u);
  EXPECT_EQ(restored.wasted("app", "sig"), 1u);
  // The learned change interval survives; its clock is re-anchored to `now`.
  EXPECT_EQ(restored.learned_expiry("app", "sig", seconds(1)),
            model.learned_expiry("app", "sig", seconds(1)));
}

// ------------------------------------------------------------ admission ----

Estimate make_estimate(double p_use, double saving_ms, double bytes) {
  Estimate e;
  e.p_use = p_use;
  e.saving_ms = saving_ms;
  e.bytes = bytes;
  return e;
}

TEST(AdmissionController, ValueFormula) {
  // 0.5 probability of hiding 100 ms for 10 KB -> 5 ms/KB.
  EXPECT_DOUBLE_EQ(AdmissionController::value_of(make_estimate(0.5, 100, 10240)), 5.0);
  // Sub-KB bodies are floored at 1 KB so tiny responses don't look infinitely
  // valuable.
  EXPECT_DOUBLE_EQ(AdmissionController::value_of(make_estimate(1.0, 10, 100)), 10.0);
}

TEST(AdmissionController, AdmitsAboveFloorRejectsBelow) {
  PolicyOptions options;
  options.min_value = 1.0;
  AdmissionController admission(options);
  EXPECT_TRUE(admission.admit(make_estimate(0.5, 100, 10240)));   // 5 ms/KB
  EXPECT_FALSE(admission.admit(make_estimate(0.01, 100, 10240)));  // 0.1 ms/KB
}

TEST(AdmissionController, ThresholdGrowsUnderOverloadAndDecaysWhenCalm) {
  PolicyOptions options;
  options.min_value = 1.0;
  options.threshold_growth = 2.0;
  options.threshold_decay = 0.5;
  options.max_threshold = 8.0;
  options.target_queue_depth = 10;
  AdmissionController admission(options);

  // First observation only primes the drop baseline.
  admission.observe_load(/*queue_depth=*/1000, /*drops_total=*/50);
  EXPECT_DOUBLE_EQ(admission.threshold(), 1.0);

  // Queue above target -> growth, capped at max_threshold.
  admission.observe_load(1000, 50);
  EXPECT_DOUBLE_EQ(admission.threshold(), 2.0);
  admission.observe_load(1000, 50);
  admission.observe_load(1000, 50);
  admission.observe_load(1000, 50);
  EXPECT_DOUBLE_EQ(admission.threshold(), 8.0);

  // Calm -> decay, floored at min_value.
  for (int i = 0; i < 10; ++i) admission.observe_load(0, 50);
  EXPECT_DOUBLE_EQ(admission.threshold(), 1.0);
}

TEST(AdmissionController, DropsDeltaTriggersGrowthEvenWithShortQueue) {
  PolicyOptions options;
  options.min_value = 1.0;
  options.threshold_growth = 2.0;
  options.target_queue_depth = 100;
  AdmissionController admission(options);
  admission.observe_load(0, 50);  // prime: inherited counter value is not overload
  EXPECT_DOUBLE_EQ(admission.threshold(), 1.0);
  admission.observe_load(0, 51);  // one post-enqueue drop since last look
  EXPECT_DOUBLE_EQ(admission.threshold(), 2.0);
  admission.observe_load(0, 51);  // no new drops -> calm again
  EXPECT_LT(admission.threshold(), 2.0);
}

// ---------------------------------------------------------------- pacer ----

TEST(BudgetPacer, ZeroBudgetIsUnlimited) {
  BudgetPacer pacer;
  EXPECT_TRUE(pacer.unlimited());
  EXPECT_TRUE(pacer.allows(1 << 30, 0));
  pacer.charge(1 << 30, 0);
  EXPECT_TRUE(pacer.allows(1 << 30, seconds(1)));
}

TEST(BudgetPacer, ChargesMayOverdraftThenRefill) {
  BudgetPacer::Options options;
  options.budget = 1000;
  options.window = seconds(10);  // refills 100 bytes/s
  BudgetPacer pacer(options);

  EXPECT_TRUE(pacer.allows(1000, 0));
  pacer.charge(1500, 0);  // actual size only known at response time
  EXPECT_DOUBLE_EQ(pacer.tokens(0), -500.0);
  EXPECT_FALSE(pacer.allows(1, 0));

  // 5 s of refill: -500 + 500 = 0; still can't afford a byte.
  EXPECT_FALSE(pacer.allows(1, seconds(5)));
  // 3 more seconds: 300 tokens.
  EXPECT_TRUE(pacer.allows(300, seconds(8)));
  EXPECT_FALSE(pacer.allows(301, seconds(8)));
}

TEST(BudgetPacer, RefillCapsAtBudget) {
  BudgetPacer::Options options;
  options.budget = 1000;
  options.window = seconds(1);
  BudgetPacer pacer(options);
  EXPECT_DOUBLE_EQ(pacer.tokens(minutes(10)), 1000.0);
}

TEST(BudgetPacer, HitRefundDiscountsUsefulBytes) {
  BudgetPacer::Options options;
  options.budget = 1000;
  options.window = minutes(10);  // slow refill so arithmetic dominates
  options.hit_refund = 0.5;
  BudgetPacer pacer(options);

  pacer.charge(600, 0);
  EXPECT_DOUBLE_EQ(pacer.tokens(0), 400.0);
  pacer.refund_hit(600);  // the bytes turned out useful -> net cost 300
  EXPECT_DOUBLE_EQ(pacer.tokens(0), 700.0);

  // Refunds never push the bucket above capacity.
  pacer.refund_hit(1 << 20);
  EXPECT_DOUBLE_EQ(pacer.tokens(0), 1000.0);
}

// -------------------------------------------------------------- options ----

TEST(PolicyOptions, ValidateRejectsNonsense) {
  PolicyOptions bad;
  bad.min_value = -1;
  EXPECT_TRUE(static_cast<bool>(bad.validate()));
  EXPECT_THROW(bad.validate().throw_if_error(), InvalidArgumentError);

  bad = PolicyOptions{};
  bad.threshold_growth = 0.5;  // growth must be >= 1
  EXPECT_TRUE(static_cast<bool>(bad.validate()));

  bad = PolicyOptions{};
  bad.threshold_decay = 1.5;  // decay must be <= 1
  EXPECT_TRUE(static_cast<bool>(bad.validate()));

  bad = PolicyOptions{};
  bad.hit_byte_refund = 2.0;
  EXPECT_TRUE(static_cast<bool>(bad.validate()));

  const PolicyOptions good;
  EXPECT_TRUE(good.validate().ok());
}

}  // namespace
}  // namespace appx::policy
