// Integration tests for the evaluation layer: testbed wiring, experiment
// drivers, the verification phase, and report formatting. These are the
// paper's headline claims as assertions.
#include <gtest/gtest.h>

#include <sstream>

#include "eval/experiments.hpp"
#include "eval/report.hpp"
#include "eval/verification.hpp"
#include "util/error.hpp"

namespace appx::eval {
namespace {

// Shared analyzed app (analysis of the full Wish model takes ~10 ms; do it
// once for the suite).
const AnalyzedApp& wish() {
  static const AnalyzedApp app = analyze_app(apps::make_wish());
  return app;
}

// --- Testbed ----------------------------------------------------------------------

TEST(Testbed, ForwardsAndMeasuresTraffic) {
  TestbedConfig config;
  config.prefetch_enabled = false;
  Testbed bed(&wish().spec, &wish().analysis.signatures, config);
  bool done = false;
  bed.client_for("u").run_interaction(apps::kLaunchInteraction, 0,
                                      [&](const apps::InteractionResult& r) {
                                        done = true;
                                        EXPECT_TRUE(r.ok);
                                      });
  bed.sim().run();
  EXPECT_TRUE(done);
  EXPECT_GT(bed.origin_down_bytes(), 0);
  EXPECT_GT(bed.client_down_bytes(), 0);
  EXPECT_FALSE(bed.observed_requests().empty());
  // Baseline proxy never prefetches.
  EXPECT_EQ(bed.proxy().stats().prefetches_issued, 0u);
  EXPECT_GT(bed.proxy().stats().skipped_probability, 0u);
}

TEST(Testbed, LatencyReflectsConfiguredRtt) {
  // One launch under two different client RTTs: higher RTT, higher latency.
  Duration totals[2];
  int i = 0;
  for (const Duration rtt : {milliseconds(10), milliseconds(200)}) {
    TestbedConfig config;
    config.prefetch_enabled = false;
    config.client_proxy_rtt = rtt;
    Testbed bed(&wish().spec, &wish().analysis.signatures, config);
    bed.client_for("u").run_interaction(apps::kLaunchInteraction, 0,
                                        [&](const apps::InteractionResult& r) {
                                          totals[i] = r.total;
                                        });
    bed.sim().run();
    ++i;
  }
  EXPECT_GT(totals[1], totals[0] + milliseconds(400));  // several serial waves
}

TEST(Testbed, OriginRttOverrideApplies) {
  Duration totals[2];
  int i = 0;
  for (const Duration rtt : {milliseconds(10), milliseconds(300)}) {
    TestbedConfig config;
    config.prefetch_enabled = false;
    config.proxy_origin_rtt_override = rtt;
    Testbed bed(&wish().spec, &wish().analysis.signatures, config);
    bed.client_for("u").run_interaction(apps::kLaunchInteraction, 0,
                                        [&](const apps::InteractionResult& r) {
                                          totals[i] = r.total;
                                        });
    bed.sim().run();
    ++i;
  }
  EXPECT_GT(totals[1], totals[0]);
}

TEST(Testbed, RejectsNullArguments) {
  TestbedConfig config;
  EXPECT_THROW(Testbed(nullptr, &wish().analysis.signatures, config), InvalidArgumentError);
  EXPECT_THROW(Testbed(&wish().spec, nullptr, config), InvalidArgumentError);
}

// --- experiments: the paper's headline claims ---------------------------------------

TEST(Experiments, MainInteractionPrefetchingReducesLatency) {
  TestbedConfig orig;
  orig.prefetch_enabled = false;
  orig.origin_proc_jitter = 0;
  const Breakdown base = measure_main_interaction(wish(), orig, 5);

  TestbedConfig accel;
  accel.prefetch_enabled = true;
  accel.origin_proc_jitter = 0;
  accel.proxy_config = deployment_config(wish());
  const Breakdown fast = measure_main_interaction(wish(), accel, 5);

  // Paper Fig. 13: 47-62% reduction; assert the conservative band.
  const double reduction = 1.0 - fast.total_ms / base.total_ms;
  EXPECT_GT(reduction, 0.25);
  EXPECT_LT(reduction, 0.80);
  // Processing delay is untouched; all savings are network savings.
  EXPECT_NEAR(fast.processing_ms, base.processing_ms, 1.0);
  EXPECT_LT(fast.network_ms, base.network_ms);
}

TEST(Experiments, LaunchBenefitsLessThanMainInteraction) {
  TestbedConfig orig;
  orig.prefetch_enabled = false;
  orig.origin_proc_jitter = 0;
  TestbedConfig accel;
  accel.prefetch_enabled = true;
  accel.origin_proc_jitter = 0;
  accel.proxy_config = deployment_config(wish());

  const double main_cut = 1.0 - measure_main_interaction(wish(), accel, 5).total_ms /
                                    measure_main_interaction(wish(), orig, 5).total_ms;
  const double launch_cut = 1.0 - measure_launch(wish(), accel, 5).total_ms /
                                      measure_launch(wish(), orig, 5).total_ms;
  EXPECT_GT(launch_cut, 0.02);       // launch still improves...
  EXPECT_LT(launch_cut, main_cut);   // ...but less (paper Fig. 13 vs 14)
}

TEST(Experiments, TraceWorkloadLatencyAndDataUsage) {
  trace::TraceParams tp;
  tp.users = 6;  // keep the test fast; benches run the full 30
  const auto traces = trace::generate_traces(wish().spec, tp);

  TestbedConfig orig;
  orig.prefetch_enabled = false;
  const auto base = run_trace_experiment(wish(), orig, traces);

  TestbedConfig accel;
  accel.prefetch_enabled = true;
  accel.proxy_config = deployment_config(wish());
  const auto fast = run_trace_experiment(wish(), accel, traces);

  ASSERT_GT(base.main_latency_ms.count(), 20u);
  ASSERT_EQ(base.main_latency_ms.count(), fast.main_latency_ms.count());
  // Median latency falls...
  EXPECT_LT(fast.main_latency_ms.median(), 0.85 * base.main_latency_ms.median());
  // ...at the cost of extra proxy<->origin data (paper: 1.08-4.17x).
  EXPECT_GT(fast.origin_bytes, base.origin_bytes);
  EXPECT_LT(fast.origin_bytes, 6 * base.origin_bytes);
  EXPECT_GT(fast.proxy_stats.cache_hits, 0u);
}

TEST(Experiments, ProbabilityKnobTradesLatencyForData) {
  trace::TraceParams tp;
  tp.users = 6;
  const auto traces = trace::generate_traces(wish().spec, tp);

  Bytes usage_low = 0, usage_high = 0;
  double median_low = 0, median_high = 0;
  for (const double p : {0.25, 1.0}) {
    TestbedConfig accel;
    accel.prefetch_enabled = true;
    accel.proxy_config = deployment_config(wish(), p);
    const auto result = run_trace_experiment(wish(), accel, traces);
    if (p < 0.5) {
      usage_low = result.origin_bytes;
      median_low = result.main_latency_ms.median();
    } else {
      usage_high = result.origin_bytes;
      median_high = result.main_latency_ms.median();
    }
  }
  EXPECT_LT(usage_low, usage_high);      // less prefetching, less data
  EXPECT_GE(median_low, median_high);    // ...but weakly higher latency
}

TEST(Experiments, CoverageOrderingMatchesTableThree) {
  fuzz::FuzzParams fp;
  fp.duration = minutes(10);  // abbreviated fuzzing for test speed
  trace::TraceParams tp;
  tp.users = 8;
  const CoverageRow row = run_coverage_experiment(wish(), fp, tp);

  EXPECT_EQ(row.appx.total, 120u);
  EXPECT_EQ(row.appx.prefetchable, 33u);
  EXPECT_EQ(row.appx.dependencies, 794u);
  EXPECT_EQ(row.appx.max_chain, 12u);

  // Static analysis strictly dominates both dynamic methods.
  EXPECT_GT(row.appx.total, row.fuzz.total);
  EXPECT_GT(row.appx.prefetchable, row.fuzz.prefetchable);
  EXPECT_GT(row.appx.dependencies, row.fuzz.dependencies);
  EXPECT_GT(row.appx.max_chain, row.fuzz.max_chain);
  EXPECT_GT(row.appx.total, row.user.total);
  EXPECT_GT(row.fuzz.total, 10u);
  EXPECT_GT(row.user.total, 5u);
}

TEST(Experiments, InducedMetricsOnSubsets) {
  const auto& sigs = wish().analysis.signatures;
  // Empty set -> zeros.
  const CoverageMetrics empty = induced_metrics(sigs, {});
  EXPECT_EQ(empty.total, 0u);
  EXPECT_EQ(empty.dependencies, 0u);
  // Full set -> full metrics.
  std::set<std::string> all;
  for (const auto& sig : sigs.all()) all.insert(sig->id);
  const CoverageMetrics full = induced_metrics(sigs, all);
  EXPECT_EQ(full.total, sigs.size());
  EXPECT_EQ(full.dependencies, sigs.edges().size());
  EXPECT_EQ(full.max_chain, sigs.max_chain_length());
  EXPECT_EQ(full.prefetchable, sigs.prefetchable().size());
}

// --- verification phase (§4.3) -------------------------------------------------------

TEST(Verification, DisablesNonceProtectedSignature) {
  VerificationParams params;
  params.fuzz.duration = minutes(12);
  params.fuzz.seed = 3;
  const VerificationOutcome outcome = run_verification(wish(), params);

  EXPECT_GT(outcome.prefetches_observed, 0u);
  // The cart endpoint replays nonces -> 403 -> must be disabled.
  const auto* cart = wish().analysis.signatures.find_by_label("cart_add");
  ASSERT_NE(cart, nullptr);
  EXPECT_TRUE(outcome.failing.contains(cart->id));
  const auto* policy = outcome.initial_config.policy_for(cart->id);
  ASSERT_NE(policy, nullptr);
  EXPECT_FALSE(policy->prefetch);

  // Idempotent endpoints verify fine and stay enabled.
  const auto* detail = wish().analysis.signatures.find_by_label("detail");
  ASSERT_NE(detail, nullptr);
  EXPECT_TRUE(outcome.verified.contains(detail->id));
  const auto* detail_policy = outcome.initial_config.policy_for(detail->id);
  ASSERT_NE(detail_policy, nullptr);
  EXPECT_TRUE(detail_policy->prefetch);
}

TEST(Verification, EstimatesExpirationFromContentChurn) {
  VerificationParams params;
  params.fuzz.duration = minutes(12);
  const VerificationOutcome outcome = run_verification(wish(), params);
  const auto* detail = wish().analysis.signatures.find_by_label("detail");
  const auto it = outcome.expiry_estimates.find(detail->id);
  ASSERT_NE(it, outcome.expiry_estimates.end());
  // The catalog default content TTL is 30 min; the doubling probe lands
  // within a factor of two.
  EXPECT_GE(it->second, minutes(15));
  EXPECT_LE(it->second, minutes(64));
  // The emitted policy halves the observed period (conservative freshness).
  const auto* policy = outcome.initial_config.policy_for(detail->id);
  ASSERT_NE(policy, nullptr);
  ASSERT_TRUE(policy->expiration_time.has_value());
  EXPECT_EQ(*policy->expiration_time, it->second / 2);
}

TEST(Verification, GeneratedConfigRoundTripsThroughJson) {
  VerificationParams params;
  params.fuzz.duration = minutes(5);
  const VerificationOutcome outcome = run_verification(wish(), params);
  const auto back = core::ProxyConfig::from_json(outcome.initial_config.to_json());
  EXPECT_EQ(back.policy_count(), outcome.initial_config.policy_count());
}

// --- report formatting ------------------------------------------------------------------

TEST(TablePrinter, AlignsColumns) {
  TablePrinter table({"A", "Longer header"});
  table.add_row({"xxxxxxxx", "1"});
  std::ostringstream out;
  table.print(out);
  const std::string text = out.str();
  EXPECT_NE(text.find("| A        | Longer header |"), std::string::npos);
  EXPECT_NE(text.find("| xxxxxxxx | 1             |"), std::string::npos);
}

TEST(TablePrinter, RejectsBadRows) {
  EXPECT_THROW(TablePrinter({}), InvalidArgumentError);
  TablePrinter table({"a", "b"});
  EXPECT_THROW(table.add_row({"only one"}), InvalidArgumentError);
}

TEST(TablePrinter, Formatting) {
  EXPECT_EQ(TablePrinter::fmt(1234.567, 1), "1234.6");
  EXPECT_EQ(TablePrinter::fmt(2.0, 0), "2");
  EXPECT_EQ(TablePrinter::pct(0.47), "47%");
  EXPECT_EQ(TablePrinter::pct(0.123, 1), "12.3%");
}

}  // namespace
}  // namespace appx::eval
