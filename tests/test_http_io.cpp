// Tests for HTTP/1.1 framing over TCP: pipelining, fragmentation, malformed
// framing, and clean EOF behaviour — exercised over real loopback sockets.
#include <gtest/gtest.h>

#include <chrono>
#include <thread>

#include "net/http_io.hpp"
#include "util/error.hpp"

namespace appx::net {
namespace {

// A listener + connected client pair on loopback.
struct Pipe {
  Pipe() : listener(0) {
    std::thread connector([this] { client = TcpStream::connect("127.0.0.1", listener.port()); });
    server = listener.accept();
    connector.join();
  }
  TcpListener listener;
  TcpStream server{Fd{}};
  TcpStream client{Fd{}};
};

TEST(HttpIo, PipelinedRequestsAreSplitCorrectly) {
  Pipe pipe;
  http::Request a;
  a.method = "POST";
  a.uri = http::Uri::parse("https://h.example/a");
  a.body = "one";
  http::Request b;
  b.uri = http::Uri::parse("https://h.example/b?x=1");

  // Both requests in a single write (pipelining).
  pipe.client.write_all(a.serialize() + b.serialize());
  pipe.client.shutdown_write();

  HttpReader reader(&pipe.server);
  const auto first = reader.read_request();
  ASSERT_TRUE(first.has_value());
  EXPECT_EQ(first->uri.path, "/a");
  EXPECT_EQ(first->body, "one");
  const auto second = reader.read_request();
  ASSERT_TRUE(second.has_value());
  EXPECT_EQ(second->uri.path, "/b");
  EXPECT_EQ(second->uri.query_param("x").value(), "1");
  EXPECT_FALSE(reader.read_request().has_value());  // clean EOF
}

TEST(HttpIo, FragmentedMessageIsReassembled) {
  Pipe pipe;
  http::Response resp;
  resp.body = std::string(10000, 'z');
  const std::string wire = resp.serialize();

  std::thread writer([&] {
    // Dribble the bytes out in small chunks.
    for (std::size_t i = 0; i < wire.size(); i += 777) {
      pipe.client.write_all(std::string_view(wire).substr(i, 777));
    }
    pipe.client.shutdown_write();
  });
  HttpReader reader(&pipe.server);
  const auto received = reader.read_response();
  writer.join();
  ASSERT_TRUE(received.has_value());
  EXPECT_EQ(received->body, resp.body);
}

TEST(HttpIo, EofMidMessageThrows) {
  Pipe pipe;
  pipe.client.write_all("POST /x HTTP/1.1\r\nContent-Length: 100\r\n\r\nshort");
  pipe.client.shutdown_write();
  HttpReader reader(&pipe.server);
  EXPECT_THROW(reader.read_request(), ParseError);
}

TEST(HttpIo, BadContentLengthThrows) {
  Pipe pipe;
  pipe.client.write_all("POST /x HTTP/1.1\r\nContent-Length: banana\r\n\r\n");
  pipe.client.shutdown_write();
  HttpReader reader(&pipe.server);
  EXPECT_THROW(reader.read_request(), ParseError);
}

TEST(HttpIo, MessageWithoutBodyNeedsNoContentLength) {
  Pipe pipe;
  pipe.client.write_all("GET /plain HTTP/1.1\r\nHost: h.example\r\n\r\n");
  pipe.client.shutdown_write();
  HttpReader reader(&pipe.server);
  const auto request = reader.read_request();
  ASSERT_TRUE(request.has_value());
  EXPECT_EQ(request->uri.host, "h.example");
  EXPECT_TRUE(request->body.empty());
}

TEST(HttpIo, OversizedHeaderBlockIs431) {
  Pipe pipe;
  ReaderLimits limits;
  limits.max_head_bytes = 256;
  // An endless header stream: must be rejected once the bound is crossed,
  // not buffered forever.
  std::thread writer([&] {
    try {
      pipe.client.write_all("GET / HTTP/1.1\r\n");
      for (int i = 0; i < 64; ++i) {
        pipe.client.write_all("X-Padding-" + std::to_string(i) + ": " +
                              std::string(64, 'p') + "\r\n");
      }
      pipe.client.shutdown_write();
    } catch (const Error&) {
      // Reader may tear the connection down first.
    }
  });
  HttpReader reader(&pipe.server, limits);
  try {
    reader.read_request();
    FAIL() << "oversized head must throw";
  } catch (const MessageTooLargeError& e) {
    EXPECT_EQ(e.suggested_status(), 431);
  }
  pipe.server = TcpStream(Fd{});  // close our end so the writer unblocks
  writer.join();
}

TEST(HttpIo, OversizedDeclaredBodyIs413) {
  Pipe pipe;
  ReaderLimits limits;
  limits.max_body_bytes = 1024;
  // The declared length alone must reject the message: the reader never
  // tries to buffer the (possibly huge) body.
  pipe.client.write_all("POST /x HTTP/1.1\r\nContent-Length: 5000000\r\n\r\n");
  HttpReader reader(&pipe.server, limits);
  try {
    reader.read_request();
    FAIL() << "oversized body must throw";
  } catch (const MessageTooLargeError& e) {
    EXPECT_EQ(e.suggested_status(), 413);
  }
}

TEST(HttpIo, BodyAtTheLimitIsAccepted) {
  Pipe pipe;
  ReaderLimits limits;
  limits.max_body_bytes = 1024;
  http::Response resp;
  resp.body = std::string(1024, 'b');
  write_response(pipe.client, resp);
  HttpReader reader(&pipe.server, limits);
  const auto received = reader.read_response();
  ASSERT_TRUE(received.has_value());
  EXPECT_EQ(received->body.size(), 1024u);
}

TEST(HttpIo, LongPipelinedBurstDrainsThroughCompaction) {
  Pipe pipe;
  // Enough pipelined messages to push the consumed-byte cursor past the
  // compaction threshold several times over.
  constexpr int kMessages = 600;
  std::thread writer([&] {
    for (int i = 0; i < kMessages; ++i) {
      http::Request req;
      req.method = "POST";
      req.uri = http::Uri::parse("https://h.example/msg");
      req.uri.add_query_param("i", std::to_string(i));
      req.body = std::string(256, 'q');
      write_request(pipe.client, req);
    }
    pipe.client.shutdown_write();
  });
  HttpReader reader(&pipe.server);
  int seen = 0;
  while (auto request = reader.read_request()) {
    EXPECT_EQ(request->uri.query_param("i").value(), std::to_string(seen));
    EXPECT_EQ(request->body.size(), 256u);
    ++seen;
  }
  writer.join();
  EXPECT_EQ(seen, kMessages);
}

TEST(HttpIo, ReadTimeoutOnSilentPeerThrows) {
  Pipe pipe;
  pipe.server.set_read_timeout(milliseconds(50));
  HttpReader reader(&pipe.server);
  // The client never writes: the read must give up instead of blocking
  // forever.
  EXPECT_THROW(reader.read_request(), TimeoutError);
}

TEST(HttpIo, DeadlineCapsSlowTrickle) {
  Pipe pipe;
  pipe.server.set_deadline(std::chrono::steady_clock::now() + std::chrono::milliseconds(100));
  std::thread writer([&] {
    try {
      // Trickle forever: each write renews a per-op timer, but the absolute
      // deadline still cuts the request off.
      for (int i = 0; i < 100; ++i) {
        pipe.client.write_all("X");
        std::this_thread::sleep_for(std::chrono::milliseconds(20));
      }
    } catch (const Error&) {
    }
  });
  HttpReader reader(&pipe.server);
  EXPECT_THROW(reader.read_request(), TimeoutError);
  pipe.server = TcpStream(Fd{});
  writer.join();
}

TEST(HttpIo, RoundTripThroughRealSocketsPreservesEverything) {
  Pipe pipe;
  http::Request req;
  req.method = "POST";
  req.uri = http::Uri::parse("https://api.example/product/get?v=2");
  req.headers.set("Cookie", "abc=1; d=2");
  req.headers.add("X-Multi", "one");
  req.headers.add("X-Multi", "two");
  req.set_form_fields({{"cid", "0c99f"}, {"_cap[]", "2"}, {"_cap[]", "4"}});

  write_request(pipe.client, req);
  HttpReader reader(&pipe.server);
  const auto received = reader.read_request();
  ASSERT_TRUE(received.has_value());
  EXPECT_EQ(received->method, "POST");
  EXPECT_EQ(received->uri.path, "/product/get");
  EXPECT_EQ(received->uri.query_param("v").value(), "2");
  EXPECT_EQ(received->headers.get_all("X-Multi").size(), 2u);
  EXPECT_EQ(received->form_fields(), req.form_fields());
  // The scheme is lost on the wire (origin-form) but the cache identity is
  // restored once the proxy normalises it.
  http::Request normalised = *received;
  normalised.uri.scheme = "https";
  EXPECT_EQ(normalised.cache_key(), req.cache_key());
}

// --- HttpParser (push API, as driven by the event loop) -----------------------

TEST(HttpParser, ByteByByteFeedYieldsTheMessageExactlyOnce) {
  http::Request req;
  req.method = "POST";
  req.uri = http::Uri::parse("https://h.example/x");
  req.body = "payload";
  const std::string wire = req.serialize();

  HttpParser parser;
  for (std::size_t i = 0; i + 1 < wire.size(); ++i) {
    parser.append(wire.data() + i, 1);
    EXPECT_FALSE(parser.next_message().has_value()) << "complete at byte " << i;
  }
  parser.append(wire.data() + wire.size() - 1, 1);
  const auto message = parser.next_message();
  ASSERT_TRUE(message.has_value());
  EXPECT_EQ(*message, wire);
  EXPECT_EQ(parser.pending_bytes(), 0u);
  EXPECT_FALSE(parser.next_message().has_value());
}

TEST(HttpParser, TwoMessagesInOneAppendPollInOrder) {
  http::Request a;
  a.uri = http::Uri::parse("https://h.example/first");
  a.body = "A";
  http::Request b;
  b.uri = http::Uri::parse("https://h.example/second");
  const std::string wire = a.serialize() + b.serialize();

  HttpParser parser;
  parser.append(wire.data(), wire.size());
  const auto first = parser.next_message();
  ASSERT_TRUE(first.has_value());
  EXPECT_EQ(http::Request::parse(*first).uri.path, "/first");
  const auto second = parser.next_message();
  ASSERT_TRUE(second.has_value());
  EXPECT_EQ(http::Request::parse(*second).uri.path, "/second");
  EXPECT_EQ(parser.pending_bytes(), 0u);
}

TEST(HttpParser, OversizedHeadThrowsBeforeTheTerminatorArrives) {
  // An endless header block must be rejected as soon as the head bound is
  // crossed — not only once (never) the blank line shows up; otherwise a
  // slow-loris peer could grow the buffer without limit.
  HttpParser parser(ReaderLimits{/*max_head_bytes=*/256, /*max_body_bytes=*/1024});
  const std::string start = "GET / HTTP/1.1\r\n";
  parser.append(start.data(), start.size());
  EXPECT_FALSE(parser.next_message().has_value());
  const std::string filler = "X-Pad: " + std::string(512, 'p') + "\r\n";  // no terminator yet
  parser.append(filler.data(), filler.size());
  EXPECT_THROW(
      {
        try {
          parser.next_message();
        } catch (const MessageTooLargeError& e) {
          EXPECT_EQ(e.suggested_status(), 431);
          throw;
        }
      },
      MessageTooLargeError);
}

TEST(HttpParser, ResetDropsBufferedPartialState) {
  HttpParser parser;
  const std::string partial = "POST /half HTTP/1.1\r\nContent-Length: 100\r\n";
  parser.append(partial.data(), partial.size());
  EXPECT_GT(parser.pending_bytes(), 0u);
  parser.reset();
  EXPECT_EQ(parser.pending_bytes(), 0u);
  // A fresh complete message parses cleanly after the reset.
  http::Request req;
  req.uri = http::Uri::parse("https://h.example/fresh");
  const std::string wire = req.serialize();
  parser.append(wire.data(), wire.size());
  const auto message = parser.next_message();
  ASSERT_TRUE(message.has_value());
  EXPECT_EQ(http::Request::parse(*message).uri.path, "/fresh");
}

// --- HttpParser pinning (views stay valid while a request is processed) -------

TEST(HttpParser, PinnedViewSurvivesConcurrentAppend) {
  HttpParser parser;
  const std::string first = "GET /one HTTP/1.1\r\nHost: a.example\r\n\r\n";
  parser.append(first.data(), first.size());
  const auto message = parser.next_message();
  ASSERT_TRUE(message.has_value());
  parser.pin();
  const char* data_before = message->data();
  const std::string snapshot(*message);

  // While pinned, more bytes arriving (the event loop draining an EPOLLHUP)
  // must not move or mutate the buffer under the outstanding view.
  const std::string second = "GET /two HTTP/1.1\r\nHost: a.example\r\n\r\n";
  for (std::size_t i = 0; i < second.size(); ++i) parser.append(second.data() + i, 1);
  EXPECT_EQ(message->data(), data_before);
  EXPECT_EQ(*message, snapshot);
  EXPECT_EQ(parser.pending_bytes(), second.size());  // staged in overflow

  // unpin() merges the staged bytes; the next message parses normally.
  parser.unpin();
  EXPECT_FALSE(parser.pinned());
  const auto next = parser.next_message();
  ASSERT_TRUE(next.has_value());
  EXPECT_EQ(http::Request::parse(*next).uri.path, "/two");
  EXPECT_EQ(parser.pending_bytes(), 0u);
}

TEST(HttpParser, CompactionIsDeferredWhilePinned) {
  HttpParser parser;
  // One pipelined burst whose consumed prefix crosses kCompactThreshold
  // (64 KiB): after polling every message, the very next unpinned append
  // would compact (erase the prefix, relocating the bytes under any view).
  const std::string filler_body(16 * 1024, 'x');
  const std::string filler = "POST /fill HTTP/1.1\r\nContent-Length: " +
                             std::to_string(filler_body.size()) + "\r\n\r\n" + filler_body;
  const std::string probe = "GET /probe HTTP/1.1\r\nHost: a.example\r\n\r\n";
  std::string burst;
  for (int i = 0; i < 5; ++i) burst += filler;  // > 80 KiB of consumed prefix
  burst += probe;
  parser.append(burst.data(), burst.size());
  for (int i = 0; i < 5; ++i) ASSERT_TRUE(parser.next_message().has_value());
  const auto message = parser.next_message();
  ASSERT_TRUE(message.has_value());
  parser.pin();
  const char* data_before = message->data();
  const std::string tail = "GET /after HTTP/1.1\r\nHost: a.example\r\n\r\n";
  parser.append(tail.data(), tail.size());
  EXPECT_EQ(message->data(), data_before) << "buffer compacted under a pinned view";
  EXPECT_EQ(http::Request::parse(*message).uri.path, "/probe");
  parser.unpin();
  const auto next = parser.next_message();
  ASSERT_TRUE(next.has_value());
  EXPECT_EQ(http::Request::parse(*next).uri.path, "/after");
}

TEST(HttpParser, ResetClearsPinAndOverflow) {
  HttpParser parser;
  const std::string wire = "GET /x HTTP/1.1\r\nHost: a.example\r\n\r\n";
  parser.append(wire.data(), wire.size());
  ASSERT_TRUE(parser.next_message().has_value());
  parser.pin();
  parser.append(wire.data(), wire.size());  // staged in overflow
  EXPECT_GT(parser.pending_bytes(), 0u);
  parser.reset();
  EXPECT_FALSE(parser.pinned());
  EXPECT_EQ(parser.pending_bytes(), 0u);
  EXPECT_FALSE(parser.next_message().has_value());
}

}  // namespace
}  // namespace appx::net
