// Tests for the §7 baseline engines (Looxy-style URL prefetching and the
// PALOMA-flavoured static-only prefetcher) and the URL extraction helper.
#include <gtest/gtest.h>

#include "core/baselines.hpp"
#include "wish_fixture.hpp"

namespace appx::core {
namespace {

using testfix::make_wish_set;

// --- URL extraction ------------------------------------------------------------------

TEST(ExtractUrls, FindsUrlsInJson) {
  const auto urls = extract_urls(
      R"({"items":[{"thumb":"https://img.example/t?cid=a"},{"thumb":"http://img.example/t?cid=b"}]})");
  ASSERT_EQ(urls.size(), 2u);
  EXPECT_EQ(urls[0], "https://img.example/t?cid=a");
  EXPECT_EQ(urls[1], "http://img.example/t?cid=b");
}

TEST(ExtractUrls, IgnoresNonUrls) {
  EXPECT_TRUE(extract_urls("no urls here").empty());
  EXPECT_TRUE(extract_urls("httpx://nope http:/almost https:").empty());
  EXPECT_TRUE(extract_urls("").empty());
}

TEST(ExtractUrls, StopsAtDelimiters) {
  const auto urls = extract_urls("see https://a.com/x<b> and 'https://b.com/y' done");
  ASSERT_EQ(urls.size(), 2u);
  EXPECT_EQ(urls[0], "https://a.com/x");
  EXPECT_EQ(urls[1], "https://b.com/y");
}

// --- LooxyEngine ----------------------------------------------------------------------

http::Request get_request(const std::string& url) {
  http::Request req;
  req.uri = http::Uri::parse(url);
  return req;
}

TEST(LooxyEngine, PrefetchesEmbeddedUrlsAndServesThem) {
  LooxyEngine looxy;
  http::Request feed = get_request("https://api.example/feed");
  http::Response feed_resp;
  feed_resp.body = R"({"thumb":"https://img.example/t?cid=a"})";

  Session session = looxy.session("u", 0);
  EXPECT_EQ(session.on_request(feed, 0).served, nullptr);
  auto jobs = session.on_response(feed, feed_resp, 0).prefetches;
  ASSERT_EQ(jobs.size(), 1u);
  EXPECT_EQ(jobs[0].request.method, "GET");
  EXPECT_EQ(jobs[0].request.uri.serialize(), "https://img.example/t?cid=a");

  http::Response img;
  img.opaque_payload = kilobytes(40);
  session.on_prefetch_response(jobs[0], img, 10, 20.0);

  const Decision decision = session.on_request(get_request("https://img.example/t?cid=a"), 20);
  ASSERT_NE(decision.served, nullptr);
  EXPECT_EQ(decision.served->opaque_payload, kilobytes(40));
  EXPECT_EQ(looxy.stats().cache_hits, 1u);
}

TEST(LooxyEngine, CannotServePostRequests) {
  // The paper's criticism: dependencies inside request bodies are invisible
  // to URL scanning.
  LooxyEngine looxy;
  http::Request feed = get_request("https://api.example/feed");
  http::Response resp;
  resp.body = R"({"id":"09cf"})";  // the dependency value, but no URL
  Session session = looxy.session("u", 0);
  EXPECT_TRUE(session.on_response(feed, resp, 0).prefetches.empty());
}

TEST(LooxyEngine, DeduplicatesUrlsAcrossResponses) {
  LooxyEngine looxy;
  http::Request feed = get_request("https://api.example/feed");
  http::Response resp;
  resp.body = R"({"a":"https://img.example/t?cid=a","b":"https://img.example/t?cid=a"})";
  Session session = looxy.session("u", 0);
  EXPECT_EQ(session.on_response(feed, resp, 0).prefetches.size(), 1u);
  EXPECT_TRUE(session.on_response(feed, resp, 1).prefetches.empty());
}

TEST(LooxyEngine, UsersAreIsolated) {
  LooxyEngine looxy;
  http::Request feed = get_request("https://api.example/feed");
  http::Response resp;
  resp.body = R"({"t":"https://img.example/t?cid=a"})";
  Session u1 = looxy.session("u1", 0);
  auto jobs = u1.on_response(feed, resp, 0).prefetches;
  ASSERT_EQ(jobs.size(), 1u);
  http::Response img;
  u1.on_prefetch_response(jobs[0], img, 0, 1.0);
  Session u2 = looxy.session("u2", 1);
  EXPECT_FALSE(u2.on_request(get_request("https://img.example/t?cid=a"), 1).served);
  EXPECT_TRUE(u1.on_request(get_request("https://img.example/t?cid=a"), 1).served);
}

TEST(LooxyEngine, FailedPrefetchNotCached) {
  LooxyEngine looxy;
  http::Request feed = get_request("https://api.example/feed");
  http::Response resp;
  resp.body = R"({"t":"https://img.example/missing"})";
  Session session = looxy.session("u", 0);
  auto jobs = session.on_response(feed, resp, 0).prefetches;
  ASSERT_EQ(jobs.size(), 1u);
  http::Response fail;
  fail.status = 404;
  session.on_prefetch_response(jobs[0], fail, 0, 1.0);
  EXPECT_GT(looxy.stats().prefetch_failures, 0u);
  EXPECT_FALSE(session.on_request(get_request("https://img.example/missing"), 1).served);
}

// --- StaticOnlyEngine ------------------------------------------------------------------

TEST(StaticOnlyEngine, NothingReconstructibleFromRealSignatures) {
  const auto set = make_wish_set();
  StaticOnlyEngine engine(&set);
  // Every fixture signature carries run-time holes.
  EXPECT_EQ(engine.statically_complete(), 0u);
  EXPECT_TRUE(engine.session("u", 0).take_prefetches(0).empty());
}

TEST(StaticOnlyEngine, PrefetchesFullyConcreteSignatures) {
  SignatureSet set;
  TransactionSignature sig;
  sig.app = "a";
  sig.label = "static.ping";
  sig.request.method = "GET";
  sig.request.scheme = pattern::FieldTemplate::literal("https");
  sig.request.host = pattern::FieldTemplate::literal("api.example");
  sig.request.path = pattern::FieldTemplate::literal("/ping");
  set.add(sig);

  StaticOnlyEngine engine(&set);
  EXPECT_EQ(engine.statically_complete(), 1u);

  Session session = engine.session("u", 0);
  auto jobs = session.take_prefetches(0);
  ASSERT_EQ(jobs.size(), 1u);
  EXPECT_EQ(jobs[0].request.uri.path, "/ping");
  // Seeded once per user.
  EXPECT_TRUE(session.take_prefetches(0).empty());

  http::Response resp;
  resp.body = "pong";
  session.on_prefetch_response(jobs[0], resp, 0, 1.0);
  const Decision decision = session.on_request(jobs[0].request, 1);
  ASSERT_NE(decision.served, nullptr);
  EXPECT_EQ(decision.served->body, "pong");
}

}  // namespace
}  // namespace appx::core
