// Shared test fixture: a miniature version of the paper's Wish working
// example (Figs. 1, 5, 7) expressed directly as signatures.
//
//   feed    GET  {host}/api/get-feed            -> JSON list of product ids
//   product POST {host}/product/get  cid={id}   <- depends on feed
//   image   GET  {host}/img?cid={id}            <- depends on feed
//   related POST {host}/related/get  cid={id}   <- depends on product
#pragma once

#include <string>

#include "core/signature.hpp"

namespace appx::testfix {

inline core::TransactionSignature make_feed_signature() {
  core::TransactionSignature sig;
  sig.app = "com.wish.test";
  sig.label = "wish.feed";
  sig.request.method = "GET";
  sig.request.scheme = pattern::FieldTemplate::literal("https");
  sig.request.host = pattern::FieldTemplate::hole("wish.host");
  sig.request.path = pattern::FieldTemplate::literal("/api/get-feed");
  sig.request.query = {
      {core::FieldLocation::kQuery, "offset", pattern::FieldTemplate::parse("{o:(0|-1)}"), false},
      {core::FieldLocation::kQuery, "count", pattern::FieldTemplate::parse("{n:(30|1)}"), false},
  };
  sig.request.headers = {
      {core::FieldLocation::kHeader, "Cookie", pattern::FieldTemplate::hole("wish.cookie"), false},
      {core::FieldLocation::kHeader, "User-Agent", pattern::FieldTemplate::hole("wish.ua"), false},
  };
  sig.response.body_kind = core::ResponseBodyKind::kJson;
  sig.response.fields = {
      {"data.products[*].product_info.id", ".*"},
      {"data.products[*].aspect_rat", ".*"},
  };
  sig.finalize();
  return sig;
}

inline core::TransactionSignature make_product_signature() {
  core::TransactionSignature sig;
  sig.app = "com.wish.test";
  sig.label = "wish.product";
  sig.request.method = "POST";
  sig.request.scheme = pattern::FieldTemplate::literal("https");
  sig.request.host = pattern::FieldTemplate::hole("wish.host");
  sig.request.path = pattern::FieldTemplate::literal("/product/get");
  sig.request.headers = {
      {core::FieldLocation::kHeader, "Cookie", pattern::FieldTemplate::hole("wish.cookie"), false},
      {core::FieldLocation::kHeader, "User-Agent", pattern::FieldTemplate::hole("wish.ua"), false},
  };
  sig.request.body_kind = core::BodyKind::kForm;
  sig.request.body = {
      {core::FieldLocation::kBody, "cid", pattern::FieldTemplate::hole("wish.product.cid"), false},
      {core::FieldLocation::kBody, "_client", pattern::FieldTemplate::hole("wish.client"), false},
      {core::FieldLocation::kBody, "_ver", pattern::FieldTemplate::hole("wish.ver"), false},
      {core::FieldLocation::kBody, "_build", pattern::FieldTemplate::literal("amazon"), false},
      // Branch-dependent field (Fig. 8): present only on some paths.
      {core::FieldLocation::kBody, "credit_id", pattern::FieldTemplate::hole("wish.credit"), true},
  };
  sig.response.body_kind = core::ResponseBodyKind::kJson;
  sig.response.fields = {
      {"data.contest.merchant_name", ".*"},
      {"data.contest.price", ".*"},
  };
  sig.finalize();
  return sig;
}

inline core::TransactionSignature make_image_signature() {
  core::TransactionSignature sig;
  sig.app = "com.wish.test";
  sig.label = "wish.image";
  sig.request.method = "GET";
  sig.request.scheme = pattern::FieldTemplate::literal("https");
  sig.request.host = pattern::FieldTemplate::hole("wish.host");
  sig.request.path = pattern::FieldTemplate::literal("/img");
  sig.request.query = {
      {core::FieldLocation::kQuery, "cid", pattern::FieldTemplate::hole("wish.image.cid"), false},
  };
  sig.response.body_kind = core::ResponseBodyKind::kOpaque;
  sig.finalize();
  return sig;
}

inline core::TransactionSignature make_related_signature() {
  core::TransactionSignature sig;
  sig.app = "com.wish.test";
  sig.label = "wish.related";
  sig.request.method = "POST";
  sig.request.scheme = pattern::FieldTemplate::literal("https");
  sig.request.host = pattern::FieldTemplate::hole("wish.host");
  sig.request.path = pattern::FieldTemplate::literal("/related/get");
  sig.request.body_kind = core::BodyKind::kForm;
  sig.request.body = {
      {core::FieldLocation::kBody, "merchant",
       pattern::FieldTemplate::hole("wish.related.merchant"), false},
  };
  sig.response.body_kind = core::ResponseBodyKind::kJson;
  sig.finalize();
  return sig;
}

// feed -> {product, image}; product -> related.
inline core::SignatureSet make_wish_set() {
  core::SignatureSet set;
  const auto& feed = set.add(make_feed_signature());
  const auto& product = set.add(make_product_signature());
  const auto& image = set.add(make_image_signature());
  const auto& related = set.add(make_related_signature());
  set.add_edge({feed.id, "data.products[*].product_info.id", product.id, "wish.product.cid"});
  set.add_edge({feed.id, "data.products[*].product_info.id", image.id, "wish.image.cid"});
  set.add_edge({product.id, "data.contest.merchant_name", related.id, "wish.related.merchant"});
  return set;
}

// A concrete feed request as the app would send it.
inline http::Request make_feed_request() {
  http::Request req;
  req.method = "GET";
  req.uri = http::Uri::parse("https://wish.com/api/get-feed?offset=0&count=30");
  req.headers.set("Cookie", "e8d5");
  req.headers.set("User-Agent", "Mozilla/5.0");
  return req;
}

// A concrete feed response listing the given product ids.
inline http::Response make_feed_response(const std::vector<std::string>& ids) {
  json::Array products;
  for (const std::string& id : ids) {
    json::Object info;
    info["id"] = id;
    json::Object product;
    product["product_info"] = std::move(info);
    product["aspect_rat"] = 1.5;
    products.emplace_back(std::move(product));
  }
  json::Object data;
  data["products"] = std::move(products);
  json::Object root;
  root["data"] = std::move(data);

  http::Response resp;
  resp.headers.set("Content-Type", "application/json");
  resp.body = json::Value(std::move(root)).dump();
  return resp;
}

// A concrete product request for one id, as the app would send it.
inline http::Request make_product_request(const std::string& cid, bool with_credit = false) {
  http::Request req;
  req.method = "POST";
  req.uri = http::Uri::parse("https://wish.com/product/get");
  req.headers.set("Cookie", "e8d5");
  req.headers.set("User-Agent", "Mozilla/5.0");
  http::FormFields fields{
      {"cid", cid}, {"_client", "android"}, {"_ver", "4.13.0"}, {"_build", "amazon"}};
  if (with_credit) fields.emplace_back("credit_id", "cc01");
  req.set_form_fields(fields);
  return req;
}

inline http::Response make_product_response(const std::string& merchant, int price) {
  json::Object contest;
  contest["merchant_name"] = merchant;
  contest["price"] = price;
  json::Object data;
  data["contest"] = std::move(contest);
  json::Object root;
  root["data"] = std::move(data);
  http::Response resp;
  resp.headers.set("Content-Type", "application/json");
  resp.body = json::Value(std::move(root)).dump();
  return resp;
}

}  // namespace appx::testfix
