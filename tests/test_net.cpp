// Integration tests for the real-socket front end: loopback origin servers,
// the live proxy, HTTP framing, and the end-to-end acceleration flow over
// actual TCP connections.
#include <gtest/gtest.h>
#include <poll.h>
#include <sys/epoll.h>
#include <sys/resource.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <functional>
#include <future>
#include <map>
#include <mutex>
#include <set>
#include <sstream>
#include <string_view>
#include <thread>
#include <vector>

#include "analysis/analyzer.hpp"
#include "apps/catalog.hpp"
#include "apps/compiler.hpp"
#include "core/sharded_proxy.hpp"
#include "net/event_loop.hpp"
#include "net/rlimit.hpp"
#include "net/servers.hpp"
#include "util/error.hpp"

namespace appx::net {
namespace {

// A minimal HTTP client over one keep-alive connection.
class TestClient {
 public:
  TestClient(std::uint16_t port, std::string user)
      : stream_(TcpStream::connect("127.0.0.1", port)), reader_(&stream_),
        user_(std::move(user)) {}

  http::Response send(http::Request request) {
    request.headers.set("X-Appx-User", user_);
    write_request(stream_, request);
    auto response = reader_.read_response();
    if (!response) throw Error("test client: connection closed");
    return *response;
  }

 private:
  TcpStream stream_;
  HttpReader reader_;
  std::string user_;
};

// An upstream that accepts connections and then never answers: the classic
// hung origin. Held connections stay open until the test ends.
class BlackHole {
 public:
  BlackHole() : listener_(0) {
    acceptor_ = std::thread([this] {
      while (true) {
        TcpStream stream = listener_.accept();
        if (!stream.valid()) return;
        const std::lock_guard<std::mutex> lock(mutex_);
        held_.push_back(std::move(stream));
      }
    });
  }
  ~BlackHole() {
    listener_.close();
    if (acceptor_.joinable()) acceptor_.join();
  }
  std::uint16_t port() const { return listener_.port(); }

 private:
  TcpListener listener_;
  std::thread acceptor_;
  std::mutex mutex_;
  std::vector<TcpStream> held_;
};

// An origin that serves everything except detail lookups for items other
// than `allowed_cid`: those it swallows and never answers (a selectively
// hung backend). The client path stays healthy — only the proxy's
// sibling-item prefetches hit the hang.
class SelectiveHangOrigin {
 public:
  SelectiveHangOrigin(apps::OriginServer* origin, std::string allowed_cid)
      : origin_(origin), allowed_cid_(std::move(allowed_cid)), listener_(0) {
    acceptor_ = std::thread([this] {
      while (true) {
        TcpStream stream = listener_.accept();
        if (!stream.valid()) return;
        const std::lock_guard<std::mutex> lock(mutex_);
        handlers_.emplace_back([this](TcpStream s) { serve(std::move(s)); },
                               std::move(stream));
      }
    });
  }
  ~SelectiveHangOrigin() {
    listener_.close();
    if (acceptor_.joinable()) acceptor_.join();
    std::vector<std::thread> handlers;
    {
      const std::lock_guard<std::mutex> lock(mutex_);
      handlers.swap(handlers_);
    }
    for (std::thread& t : handlers) t.join();
  }
  std::uint16_t port() const { return listener_.port(); }
  std::size_t hung_requests() const { return hung_.load(); }

 private:
  void serve(TcpStream stream) {
    try {
      HttpReader reader(&stream);
      while (auto request = reader.read_request()) {
        if (should_hang(*request)) {
          ++hung_;
          // Swallow the request: the next read blocks until the proxy gives
          // up at its deadline and closes the connection.
          continue;
        }
        http::Response response;
        {
          const std::lock_guard<std::mutex> lock(origin_mutex_);
          response = origin_->serve(*request);
        }
        write_response(stream, response);
      }
    } catch (const Error&) {
      // Connection torn down mid-read at proxy deadline or test end.
    }
  }

  bool should_hang(const http::Request& request) const {
    if (request.uri.path != "/product/get") return false;
    for (const auto& [name, value] : request.form_fields()) {
      if (name == "cid") return value != allowed_cid_;
    }
    return true;
  }

  apps::OriginServer* origin_;
  std::string allowed_cid_;
  TcpListener listener_;
  std::thread acceptor_;
  std::mutex mutex_;
  std::mutex origin_mutex_;
  std::vector<std::thread> handlers_;
  std::atomic<std::size_t> hung_{0};
};

double ms_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() - start)
      .count();
}

TEST(LiveOrigin, ServesOverRealSockets) {
  const apps::AppSpec spec = apps::make_wish();
  apps::OriginServer origin(&spec);
  LiveOriginServer server(&origin);
  ASSERT_GT(server.port(), 0);

  TcpStream stream = TcpStream::connect("127.0.0.1", server.port());
  http::Request req;
  req.method = "POST";
  req.uri = http::Uri::parse("https://" + spec.endpoint("feed").host + "/api/get-feed");
  req.uri.add_query_param("offset", "0");
  req.uri.add_query_param("count", "30");
  req.headers.set("Cookie", "c");
  req.headers.set("User-Agent", "ua");
  req.set_form_fields({{"_client", "android"}, {"_ver", "4.13.0"}});
  write_request(stream, req);

  HttpReader reader(&stream);
  const auto response = reader.read_response();
  ASSERT_TRUE(response.has_value());
  EXPECT_TRUE(response->ok());
  const auto body = json::parse(response->body);
  EXPECT_EQ(json::Path("data.items[*].id").resolve(body).size(), 30u);

  // Keep-alive: a second request on the same connection.
  write_request(stream, req);
  const auto second = reader.read_response();
  ASSERT_TRUE(second.has_value());
  EXPECT_EQ(second->body, response->body);
  server.stop();
  EXPECT_EQ(server.requests_served(), 2u);
}

TEST(LiveOrigin, UnknownPathIs404) {
  const apps::AppSpec spec = apps::make_wish();
  apps::OriginServer origin(&spec);
  LiveOriginServer server(&origin);
  TcpStream stream = TcpStream::connect("127.0.0.1", server.port());
  http::Request req;
  req.uri = http::Uri::parse("https://" + spec.endpoint("feed").host + "/definitely/not");
  write_request(stream, req);
  HttpReader reader(&stream);
  const auto response = reader.read_response();
  ASSERT_TRUE(response.has_value());
  EXPECT_EQ(response->status, 404);
}

class LiveProxyTest : public ::testing::Test {
 protected:
  LiveProxyTest()
      : spec_(apps::make_wish()),
        analysis_(analysis::analyze(apps::compile_app(spec_))),
        origin_(&spec_),
        origin_server_(&origin_) {
    config_.default_expiration = minutes(30);
    // The sharded runtime exactly as deployed: thread-safe, so the live
    // server drives shard-parallel sessions with no global engine lock.
    core::EngineOptions engine_options;
    engine_options.seed = 3;
    adapter_ = std::make_unique<core::ShardedProxyEngine>(&analysis_.signatures, &config_,
                                                          engine_options);
    // Every app host resolves to the single loopback origin.
    LiveProxyServer::UpstreamMap upstreams;
    for (const apps::EndpointSpec& ep : spec_.endpoints) {
      upstreams[ep.host] = origin_server_.port();
    }
    proxy_server_ = std::make_unique<LiveProxyServer>(adapter_.get(), std::move(upstreams));
  }

  http::Request feed_request() const {
    http::Request req;
    req.method = "POST";
    req.uri = http::Uri::parse("https://" + spec_.endpoint("feed").host + "/api/get-feed");
    req.uri.add_query_param("offset", "0");
    req.uri.add_query_param("count", "30");
    req.headers.set("Cookie", "c0");
    req.headers.set("User-Agent", "ua");
    req.set_form_fields({{"_client", "android"}, {"_ver", "4.13.0"}});
    return req;
  }

  // The detail request the app would issue for feed item `index`.
  http::Request detail_request(std::size_t index) const {
    http::Request req;
    req.method = "POST";
    req.uri = http::Uri::parse("https://" + spec_.endpoint("detail").host + "/product/get");
    req.headers.set("Cookie", "c0");
    req.headers.set("User-Agent", "ua");
    const auto feed_body = json::parse(origin_.serve(feed_request()).body);
    http::FormFields fields;
    const apps::EndpointSpec& detail = spec_.endpoint("detail");
    for (const apps::FieldSpec& f : detail.fields) {
      if (f.loc != core::FieldLocation::kBody || f.conditional) continue;
      if (f.value.kind == apps::ValueSpec::Kind::kDep) {
        std::string path = f.value.dep_path;
        const auto star = path.find("[*]");
        if (star != std::string::npos) path.replace(star, 3, "[" + std::to_string(index) + "]");
        fields.emplace_back(f.name,
                            json::Path(path).resolve_first(feed_body)->scalar_to_string());
      } else if (f.value.kind == apps::ValueSpec::Kind::kEnv) {
        fields.emplace_back(f.name, spec_.env_defaults.at(f.value.text));
      } else {
        fields.emplace_back(f.name, f.value.text);
      }
    }
    req.set_form_fields(fields);
    return req;
  }

  std::string feed_item_id(std::size_t index) const {
    const auto body = json::parse(origin_.serve(feed_request()).body);
    return json::Path("data.items[" + std::to_string(index) + "].id")
        .resolve_first(body)
        ->as_string();
  }

  apps::AppSpec spec_;
  analysis::AnalysisResult analysis_;
  apps::OriginServer origin_;
  LiveOriginServer origin_server_;
  core::ProxyConfig config_;
  std::unique_ptr<core::ShardedProxyEngine> adapter_;
  std::unique_ptr<LiveProxyServer> proxy_server_;
};

TEST_F(LiveProxyTest, ForwardsMissesTaggedAsMiss) {
  TestClient client(proxy_server_->port(), "u1");
  const auto response = client.send(feed_request());
  EXPECT_TRUE(response.ok());
  EXPECT_EQ(response.headers.get("X-Appx-Cache").value(), "miss");
  EXPECT_FALSE(json::parse(response.body).is_null());
}

TEST_F(LiveProxyTest, EndToEndPrefetchOverRealSockets) {
  TestClient client(proxy_server_->port(), "u1");
  // 1. Feed: the proxy learns the item list.
  ASSERT_TRUE(client.send(feed_request()).ok());
  // 2. First detail: a miss, but it teaches the run-time values; the proxy's
  //    prefetch worker then fetches the sibling items in the background.
  const auto first = client.send(detail_request(0));
  EXPECT_EQ(first.headers.get("X-Appx-Cache").value(), "miss");
  proxy_server_->drain_prefetches();
  // 3. A different item: served from the prefetch cache.
  const auto second = client.send(detail_request(1));
  EXPECT_EQ(second.headers.get("X-Appx-Cache").value(), "hit");
  // The served body is byte-identical to what the origin would return.
  EXPECT_EQ(second.body, origin_.serve(detail_request(1)).body);
}

TEST_F(LiveProxyTest, UsersIsolatedOverSockets) {
  TestClient u1(proxy_server_->port(), "u1");
  ASSERT_TRUE(u1.send(feed_request()).ok());
  u1.send(detail_request(0));
  proxy_server_->drain_prefetches();
  // u2 issues the same second request: the per-user cache must not leak.
  TestClient u2(proxy_server_->port(), "u2");
  const auto response = u2.send(detail_request(1));
  EXPECT_EQ(response.headers.get("X-Appx-Cache").value(), "miss");
}

TEST_F(LiveProxyTest, UnknownUpstreamHostIs502) {
  TestClient client(proxy_server_->port(), "u1");
  http::Request req;
  req.uri = http::Uri::parse("https://unmapped.example/x");
  const auto response = client.send(req);
  EXPECT_EQ(response.status, 502);
}

TEST_F(LiveProxyTest, GarbageInputClosesConnectionButServerSurvives) {
  {
    TcpStream garbage = TcpStream::connect("127.0.0.1", proxy_server_->port());
    garbage.write_all("NOT HTTP AT ALL\r\njunk junk junk\r\n\r\n");
    garbage.shutdown_write();
    char buf[64];
    while (garbage.read_some(buf, sizeof buf) > 0) {
    }  // proxy closes the connection
  }
  // The server keeps serving well-formed clients.
  TestClient client(proxy_server_->port(), "u9");
  EXPECT_TRUE(client.send(feed_request()).ok());
}

TEST_F(LiveProxyTest, ConcurrentClients) {
  // Several client threads hammer the proxy at once; everything stays
  // consistent and every response parses.
  constexpr int kClients = 8;
  std::vector<std::thread> threads;
  std::atomic<int> failures{0};
  for (int c = 0; c < kClients; ++c) {
    threads.emplace_back([this, c, &failures] {
      try {
        TestClient client(proxy_server_->port(), "user" + std::to_string(c));
        if (!client.send(feed_request()).ok()) ++failures;
        for (int i = 0; i < 4; ++i) {
          if (!client.send(detail_request(static_cast<std::size_t>(i))).ok()) {
            ++failures;
          }
        }
      } catch (const Error&) {
        ++failures;
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(failures.load(), 0);
  proxy_server_->drain_prefetches();
}

TEST_F(LiveProxyTest, ClosedConnectionsAreReleased) {
  for (int i = 0; i < 5; ++i) {
    TestClient client(proxy_server_->port(), "u" + std::to_string(i));
    EXPECT_TRUE(client.send(feed_request()).ok());
  }  // each client disconnects here
  // The event loops need a beat to observe the EOFs and drop the conns.
  const auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(5);
  while (proxy_server_->open_connections() > 0 &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  EXPECT_EQ(proxy_server_->open_connections(), 0u);
  // The origin side may legitimately stay nonzero: the proxy parks keep-alive
  // upstream connections in its pool. They must be bounded by the pool cap.
  EXPECT_LE(origin_server_.open_connections(),
            proxy_server_->options().upstream_pool_per_host);
}

TEST_F(LiveProxyTest, OversizedRequestHeadIs431) {
  core::EngineOptions options;
  options.reader_limits.max_head_bytes = 512;
  LiveProxyServer::UpstreamMap upstreams;
  for (const apps::EndpointSpec& ep : spec_.endpoints) {
    upstreams[ep.host] = origin_server_.port();
  }
  LiveProxyServer proxy(adapter_.get(), std::move(upstreams), 0, options);

  TcpStream stream = TcpStream::connect("127.0.0.1", proxy.port());
  http::Request req = feed_request();
  req.headers.set("X-Huge", std::string(2048, 'h'));
  write_request(stream, req);
  HttpReader reader(&stream);
  const auto response = reader.read_response();
  ASSERT_TRUE(response.has_value());
  EXPECT_EQ(response->status, 431);
  proxy.stop();
}

TEST(LiveOrigin, OversizedRequestHeadIs431) {
  const apps::AppSpec spec = apps::make_wish();
  apps::OriginServer origin(&spec);
  LiveOriginServer server(&origin);
  TcpStream stream = TcpStream::connect("127.0.0.1", server.port());
  // Double the default 64 KiB head limit: the server must drain the unread
  // remainder before closing, or the RST would discard the 431 off the wire.
  stream.write_all("GET / HTTP/1.1\r\nX-Huge: " + std::string(128 * 1024, 'h') + "\r\n\r\n");
  HttpReader reader(&stream);
  const auto response = reader.read_response();
  ASSERT_TRUE(response.has_value());
  EXPECT_EQ(response->status, 431);
}

TEST_F(LiveProxyTest, HungUpstreamDegradesTo504WithinDeadline) {
  BlackHole hole;
  core::EngineOptions options;
  options.connect_timeout = seconds(2);
  options.io_timeout = milliseconds(200);
  options.request_deadline = milliseconds(400);
  LiveProxyServer::UpstreamMap upstreams;
  for (const apps::EndpointSpec& ep : spec_.endpoints) upstreams[ep.host] = hole.port();
  LiveProxyServer proxy(adapter_.get(), std::move(upstreams), 0, options);

  TestClient client(proxy.port(), "uh");
  const auto started = std::chrono::steady_clock::now();
  const auto response = client.send(feed_request());
  EXPECT_EQ(response.status, 504);
  // Bounded by the request deadline, not a wedged thread (generous margin
  // for slow machines).
  EXPECT_LT(ms_since(started), 5000.0);
  // The proxy survives and keeps answering.
  EXPECT_EQ(client.send(feed_request()).status, 504);
  proxy.stop();
}

TEST_F(LiveProxyTest, HungPrefetchUpstreamDoesNotWedgeOtherUsers) {
  // The origin answers client traffic (feed, detail for item 0) but hangs on
  // detail lookups for every other item — exactly what the proxy's
  // sibling-item prefetches request. Those must resolve as 504 failures
  // within the deadline while client traffic and other users keep flowing.
  SelectiveHangOrigin hang(&origin_, feed_item_id(0));
  core::EngineOptions options;
  options.connect_timeout = seconds(2);
  options.io_timeout = milliseconds(100);
  options.request_deadline = milliseconds(150);
  options.prefetch_workers = 2;
  options.max_prefetch_queue = 8;  // shed most of the doomed sibling jobs
  LiveProxyServer::UpstreamMap upstreams;
  for (const apps::EndpointSpec& ep : spec_.endpoints) upstreams[ep.host] = hang.port();
  LiveProxyServer proxy(adapter_.get(), std::move(upstreams), 0, options);

  // u1 kicks off prefetching; its sibling-detail prefetches hang.
  TestClient u1(proxy.port(), "u1");
  ASSERT_TRUE(u1.send(feed_request()).ok());
  ASSERT_TRUE(u1.send(detail_request(0)).ok());

  // While those prefetches time out in the background, a second user's
  // client-path requests stay fast.
  const auto started = std::chrono::steady_clock::now();
  TestClient u2(proxy.port(), "u2");
  EXPECT_TRUE(u2.send(feed_request()).ok());
  EXPECT_TRUE(u2.send(detail_request(0)).ok());
  EXPECT_LT(ms_since(started), 5000.0);

  proxy.drain_prefetches();
  const auto& stats = adapter_->stats();
  // The hang was actually exercised...
  EXPECT_GT(hang.hung_requests(), 0u);
  // ...and surfaced as deadline 504s -> prefetch failures, not wedges.
  EXPECT_GT(stats.prefetch_failures, 0u);
  // The bounded queue shed overflow, and every shed job was reported back.
  EXPECT_GT(proxy.prefetch_jobs_dropped(), 0u);
  EXPECT_EQ(stats.prefetches_dropped, proxy.prefetch_jobs_dropped());
  // Every issued job was resolved exactly once: succeeded, failed or dropped.
  EXPECT_EQ(stats.prefetch_responses + stats.prefetch_failures + stats.prefetches_dropped,
            stats.prefetches_issued);
  // And the proxy still serves after the storm.
  EXPECT_TRUE(u1.send(feed_request()).ok());
  proxy.stop();
}

TEST_F(LiveProxyTest, PrefetchQueueOverflowDropsOldestAndBalances) {
  core::EngineOptions options;
  options.prefetch_workers = 1;
  options.max_prefetch_queue = 2;
  LiveProxyServer::UpstreamMap upstreams;
  for (const apps::EndpointSpec& ep : spec_.endpoints) {
    upstreams[ep.host] = origin_server_.port();
  }
  LiveProxyServer proxy(adapter_.get(), std::move(upstreams), 0, options);

  TestClient client(proxy.port(), "u1");
  ASSERT_TRUE(client.send(feed_request()).ok());
  ASSERT_TRUE(client.send(detail_request(0)).ok());  // fans out ~30 jobs
  proxy.drain_prefetches();

  const auto& stats = adapter_->stats();
  EXPECT_GT(proxy.prefetch_jobs_dropped(), 0u);
  EXPECT_EQ(stats.prefetches_dropped, proxy.prefetch_jobs_dropped());
  // Every issued job was resolved exactly once: succeeded, failed or dropped.
  EXPECT_EQ(stats.prefetch_responses + stats.prefetch_failures + stats.prefetches_dropped,
            stats.prefetches_issued);
  proxy.stop();
}

// --- /appx/* admin endpoints --------------------------------------------------

// Prometheus text -> {metric name (with labels) -> value} for non-comment lines.
std::map<std::string, double> parse_prometheus(std::string_view text) {
  std::map<std::string, double> values;
  std::istringstream lines{std::string(text)};
  std::string line;
  while (std::getline(lines, line)) {
    if (line.empty() || line[0] == '#') continue;
    const auto space = line.rfind(' ');
    if (space == std::string::npos) {
      ADD_FAILURE() << "unparsable exposition line: " << line;
      continue;
    }
    values[line.substr(0, space)] = std::stod(line.substr(space + 1));
  }
  return values;
}

http::Request admin_request(const std::string& path) {
  http::Request req;
  req.method = "GET";
  req.uri = http::Uri::parse("http://proxy.local" + path);
  return req;
}

TEST_F(LiveProxyTest, MetricsEndpointExportsBalancedCounters) {
  TestClient client(proxy_server_->port(), "u1");
  ASSERT_TRUE(client.send(feed_request()).ok());
  ASSERT_TRUE(client.send(detail_request(0)).ok());  // miss; fans out prefetches
  proxy_server_->drain_prefetches();
  ASSERT_EQ(client.send(detail_request(1)).headers.get("X-Appx-Cache").value(), "hit");

  const auto scrape = client.send(admin_request("/appx/metrics"));
  ASSERT_EQ(scrape.status, 200);
  EXPECT_EQ(scrape.headers.get("Content-Type").value_or(""), "text/plain; version=0.0.4");
  const auto metrics = parse_prometheus(scrape.body);

  // The exposition agrees with the engine's own view.
  const auto& stats = adapter_->stats();
  EXPECT_EQ(metrics.at("appx_proxy_client_requests_total"),
            static_cast<double>(stats.client_requests));
  EXPECT_EQ(metrics.at("appx_proxy_cache_hits_total"), static_cast<double>(stats.cache_hits));
  EXPECT_EQ(metrics.at("appx_prefetch_issued_total"),
            static_cast<double>(stats.prefetches_issued));
  EXPECT_GE(metrics.at("appx_proxy_client_requests_total"), 3.0);
  EXPECT_GE(metrics.at("appx_proxy_cache_hits_total"), 1.0);
  EXPECT_GT(metrics.at("appx_cache_entries"), 0.0);

  // Prefetch accounting balances fleet-wide (across every shard): each
  // issued job succeeded, failed, or was dropped — exactly once.
  EXPECT_EQ(metrics.at("appx_prefetch_responses_total") +
                metrics.at("appx_prefetch_failures_total") +
                metrics.at("appx_prefetch_dropped_total"),
            metrics.at("appx_prefetch_issued_total"));

  // Client latency histograms saw both paths.
  EXPECT_GE(metrics.at("appx_client_latency_us_count{path=\"hit\"}"), 1.0);
  EXPECT_GE(metrics.at("appx_client_latency_us_count{path=\"miss\"}"), 2.0);
}

TEST_F(LiveProxyTest, MetricsJsonEndpointParses) {
  TestClient client(proxy_server_->port(), "u1");
  ASSERT_TRUE(client.send(feed_request()).ok());

  const auto scrape = client.send(admin_request("/appx/metrics.json"));
  ASSERT_EQ(scrape.status, 200);
  EXPECT_EQ(scrape.headers.get("Content-Type").value_or(""), "application/json");
  const json::Value parsed = json::parse(scrape.body);
  EXPECT_EQ(parsed.at("counters").at("appx_proxy_client_requests_total").as_int(),
            static_cast<std::int64_t>(adapter_->stats().client_requests));
  ASSERT_NE(parsed.at("histograms").find("appx_client_latency_us{path=\"miss\"}"), nullptr);
}

TEST_F(LiveProxyTest, TraceEndpointRecordsLifecycles) {
  TestClient client(proxy_server_->port(), "u1");
  ASSERT_TRUE(client.send(feed_request()).ok());
  ASSERT_TRUE(client.send(detail_request(0)).ok());
  proxy_server_->drain_prefetches();
  ASSERT_TRUE(client.send(detail_request(1)).ok());

  const auto dump = client.send(admin_request("/appx/trace"));
  ASSERT_EQ(dump.status, 200);
  const json::Value parsed = json::parse(dump.body);
  EXPECT_GE(parsed.at("recorded").as_int(), 3);
  std::set<std::string> outcomes;
  for (const json::Value& trace : parsed.at("traces").as_array()) {
    outcomes.insert(trace.at("outcome").as_string());
    EXPECT_GE(trace.at("end_us").as_int(), trace.at("start_us").as_int());
  }
  EXPECT_TRUE(outcomes.count("miss")) << dump.body.view().substr(0, 400);
  EXPECT_TRUE(outcomes.count("hit"));
  EXPECT_TRUE(outcomes.count("prefetch"));
}

TEST_F(LiveProxyTest, UnknownAdminPathIs404AndSkipsEngine) {
  TestClient client(proxy_server_->port(), "ghost-user");
  const auto response = client.send(admin_request("/appx/nope"));
  EXPECT_EQ(response.status, 404);
  // Admin requests bypass the engine: no user state was created.
  EXPECT_EQ(adapter_->stats().client_requests, 0u);
  EXPECT_EQ(adapter_->metrics()->gauge_value("appx_proxy_users"), 0);
  EXPECT_EQ(adapter_->user_count(), 0u);
}

// --- event-loop runtime edge cases --------------------------------------------

TEST_F(LiveProxyTest, SlowLorisConnectionIsClosedByIdleTimer) {
  core::EngineOptions options;
  options.conn_idle_timeout = milliseconds(200);
  LiveProxyServer::UpstreamMap upstreams;
  for (const apps::EndpointSpec& ep : spec_.endpoints) {
    upstreams[ep.host] = origin_server_.port();
  }
  LiveProxyServer proxy(adapter_.get(), std::move(upstreams), 0, options);

  // Dribble a partial request head and go quiet. Bytes alone are not
  // "activity" — only complete requests are — so the idle timer must fire
  // and close the connection even though the peer wrote something.
  TcpStream stream = TcpStream::connect("127.0.0.1", proxy.port());
  stream.write_all("POST /api/get-feed HTTP/1.1\r\nHost: slow.example\r\nX-Dribble: ");
  stream.set_read_timeout(seconds(5));
  const auto started = std::chrono::steady_clock::now();
  char buf[64];
  EXPECT_EQ(stream.read_some(buf, sizeof buf), 0u);  // EOF: server closed
  EXPECT_LT(ms_since(started), 4000.0);
  proxy.stop();
}

TEST_F(LiveProxyTest, PipelinedRequestsInOneSegmentAnswerInOrder) {
  // Two complete requests in a single TCP segment: the reactor must parse
  // both out of one read and answer them in order, one at a time.
  http::Request first = feed_request();
  first.headers.set("X-Appx-User", "pipeline");
  http::Request second = detail_request(0);
  second.headers.set("X-Appx-User", "pipeline");
  TcpStream stream = TcpStream::connect("127.0.0.1", proxy_server_->port());
  stream.write_all(first.serialize() + second.serialize());

  HttpReader reader(&stream);
  const auto feed_response = reader.read_response();
  ASSERT_TRUE(feed_response.has_value());
  EXPECT_TRUE(feed_response->ok());
  EXPECT_EQ(json::Path("data.items[*].id").resolve(json::parse(feed_response->body)).size(),
            30u);
  const auto detail_response = reader.read_response();
  ASSERT_TRUE(detail_response.has_value());
  EXPECT_TRUE(detail_response->ok());
  EXPECT_EQ(detail_response->body, origin_.serve(detail_request(0)).body);
}

// A keep-alive origin that serves exactly one request per connection: the
// second request on any connection is read and answered with a close instead.
// Reproduces deterministically the stale-at-use race: the proxy's pooled
// connection passes the reuse health check (no FIN yet — the origin is just
// waiting in read), then dies mid-exchange.
class OneShotOrigin {
 public:
  OneShotOrigin() : listener_(0) {
    acceptor_ = std::thread([this] {
      while (true) {
        TcpStream stream = listener_.accept();
        if (!stream.valid()) return;
        const std::lock_guard<std::mutex> lock(mutex_);
        handlers_.emplace_back([this](TcpStream s) { serve(std::move(s)); },
                               std::move(stream));
      }
    });
  }
  ~OneShotOrigin() {
    listener_.close();
    if (acceptor_.joinable()) acceptor_.join();
    std::vector<std::thread> handlers;
    {
      const std::lock_guard<std::mutex> lock(mutex_);
      handlers.swap(handlers_);
    }
    for (std::thread& t : handlers) t.join();
  }
  std::uint16_t port() const { return listener_.port(); }

 private:
  void serve(TcpStream stream) {
    try {
      HttpReader reader(&stream);
      if (auto request = reader.read_request()) {
        http::Response resp;
        resp.status = 200;
        resp.reason = "OK";
        resp.body = "{}";
        write_response(stream, resp);
      }
      // Wait for a second request, then close without answering: the pooled
      // connection fails at use, not at the health check.
      reader.read_request();
    } catch (const Error&) {
    }
  }

  TcpListener listener_;
  std::thread acceptor_;
  std::mutex mutex_;
  std::vector<std::thread> handlers_;
};

TEST_F(LiveProxyTest, StalePooledUpstreamIsRetriedTransparently) {
  OneShotOrigin origin;
  LiveProxyServer::UpstreamMap upstreams;
  for (const apps::EndpointSpec& ep : spec_.endpoints) upstreams[ep.host] = origin.port();
  LiveProxyServer proxy(adapter_.get(), std::move(upstreams), 0, {});

  TestClient client(proxy.port(), "stale-user");
  // Miss #1: fresh connect; the connection is parked in the pool afterwards.
  http::Request req = feed_request();
  req.uri.add_query_param("variant", "a");
  EXPECT_EQ(client.send(req).status, 200);
  // Miss #2 reuses the parked connection, which the one-shot origin kills at
  // use. The fetch must fail over to a fresh connect without the client
  // seeing anything but a clean 200.
  http::Request req2 = feed_request();
  req2.uri.add_query_param("variant", "b");
  EXPECT_EQ(client.send(req2).status, 200);

  const UpstreamPool& pool = proxy.upstream_pool();
  EXPECT_GE(pool.reuses(), 1u);
  EXPECT_EQ(pool.retries(), 1u);
  EXPECT_EQ(pool.connects(), 2u);  // one per actually-used origin connection
  proxy.stop();
}

TEST_F(LiveProxyTest, PoolReusesConnectionAcrossSequentialMisses) {
  // Sequential unique misses ride ONE warm upstream connection instead of
  // reconnecting per fetch (the seed behavior this PR replaces).
  TestClient client(proxy_server_->port(), "pool-user");
  constexpr int kMisses = 12;
  for (int i = 0; i < kMisses; ++i) {
    http::Request req = feed_request();
    req.uri.add_query_param("unique", std::to_string(i));
    const auto response = client.send(req);
    EXPECT_EQ(response.headers.get("X-Appx-Cache").value_or(""), "miss");
  }
  proxy_server_->drain_prefetches();
  const UpstreamPool& pool = proxy_server_->upstream_pool();
  EXPECT_GE(pool.reuses(), static_cast<std::uint64_t>(kMisses - 1));
  // Warm-path reuse fraction >= 90%: at most one fresh connect per
  // concurrently-needed upstream connection (sequential client => 1).
  EXPECT_GE(static_cast<double>(pool.reuses()) /
                static_cast<double>(pool.reuses() + pool.connects()),
            0.9);
}

TEST_F(LiveProxyTest, StopDuringInFlightRequestsIsPromptAndLeakFree) {
  // Clients are mid-request against a black-hole upstream when stop() lands:
  // it must unblock the in-flight fetches (pool shutdown), close every
  // connection, and join all threads promptly. ASan/TSan verify no fd or
  // memory leaks and no races.
  BlackHole hole;
  core::EngineOptions options;
  options.connect_timeout = seconds(2);
  options.io_timeout = seconds(10);       // deliberately long: stop must cut it
  options.request_deadline = seconds(10);
  LiveProxyServer::UpstreamMap upstreams;
  for (const apps::EndpointSpec& ep : spec_.endpoints) upstreams[ep.host] = hole.port();
  auto proxy = std::make_unique<LiveProxyServer>(adapter_.get(), std::move(upstreams), 0,
                                                 options);

  constexpr int kClients = 4;
  std::vector<std::thread> clients;
  std::atomic<int> finished{0};
  for (int i = 0; i < kClients; ++i) {
    clients.emplace_back([port = proxy->port(), i, &finished] {
      try {
        TestClient client(port, "victim" + std::to_string(i));
        http::Request req;
        req.method = "POST";
        req.uri = http::Uri::parse("https://api.wish.example/api/get-feed");
        client.send(req);  // blocks on the black hole until stop()
      } catch (const Error&) {
        // Connection cut by stop(): expected.
      }
      ++finished;
    });
  }
  // Let the requests reach their upstream fetches.
  std::this_thread::sleep_for(std::chrono::milliseconds(300));
  const auto started = std::chrono::steady_clock::now();
  proxy->stop();
  EXPECT_LT(ms_since(started), 5000.0);
  for (std::thread& t : clients) t.join();
  EXPECT_EQ(finished.load(), kClients);
  EXPECT_EQ(proxy->open_connections(), 0u);
  proxy.reset();
}

// An engine whose event entry points all throw — stand-in for the reachable
// InvalidArgument/InvalidState throws in the real engines. The runtime must
// convert these into per-request 500s, never let them unwind a worker or
// loop thread (std::terminate).
class ThrowingEngine : public core::ProxyLike {
 public:
  core::UserId resolve_user(std::string_view user, SimTime) override {
    return core::UserId(std::make_shared<const std::string>(user), 0, 0, 0, 0);
  }
  void on_request(core::UserId&, const http::Request&, SimTime, core::Decision*) override {
    ++throws_;
    throw InvalidStateError("engine rejects everything");
  }
  void on_response(core::UserId&, const http::Request&, const http::Response&, SimTime,
                   core::Decision*) override {
    ++throws_;
    throw InvalidStateError("engine rejects everything");
  }
  void on_prefetch_response(core::UserId&, const core::PrefetchJob&, const http::Response&,
                            SimTime, double, core::Decision*) override {
    ++throws_;
    throw InvalidStateError("engine rejects everything");
  }
  void on_prefetch_dropped(core::UserId&, const core::PrefetchJob&, SimTime) override {}
  bool thread_safe() const override { return true; }
  const core::ProxyStats& stats() const override { return stats_; }

  std::atomic<int> throws_{0};

 private:
  core::ProxyStats stats_;
};

TEST(LiveProxyFaults, ThrowingEngineAnswers500AndServerSurvives) {
  ThrowingEngine engine;
  LiveProxyServer proxy(&engine, {});
  TestClient client(proxy.port(), "u1");

  http::Request req;
  req.uri = http::Uri::parse("https://any.example/x");
  const auto first = client.send(req);
  EXPECT_EQ(first.status, 500);
  // The worker thread survived the throw: the same keep-alive connection
  // serves the next request (which throws and 500s again).
  const auto second = client.send(req);
  EXPECT_EQ(second.status, 500);
  EXPECT_GE(engine.throws_.load(), 2);
  // Admin endpoints bypass the engine and still answer.
  EXPECT_EQ(client.send(admin_request("/appx/metrics")).status, 200);
  proxy.stop();
}

TEST(UpstreamPoolTest, AbandonedLeaseUnregistersItsFd) {
  const apps::AppSpec spec = apps::make_wish();
  apps::OriginServer origin(&spec);
  LiveOriginServer server(&origin);

  UpstreamPool pool(UpstreamPool::Options{});
  {
    UpstreamPool::Lease lease = pool.acquire("127.0.0.1", server.port());
    ASSERT_TRUE(lease.valid());
  }  // destroyed without release(): must unregister the fd, not leak it
  EXPECT_EQ(pool.idle_count(), 0u);

  // The abandoned lease's fd number is free again and is typically recycled
  // by the very next connect. shutdown() must not ::shutdown() the recycled
  // descriptor out from under its new owner.
  TestClient bystander(server.port(), "u1");
  pool.shutdown();
  http::Request req;
  req.method = "POST";
  req.uri = http::Uri::parse("https://" + spec.endpoint("feed").host + "/api/get-feed");
  req.uri.add_query_param("offset", "0");
  req.uri.add_query_param("count", "30");
  req.set_form_fields({{"_client", "android"}, {"_ver", "4.13.0"}});
  EXPECT_TRUE(bystander.send(req).ok());
  server.stop();
}

TEST(LiveOrigin, MetricsEndpointCountsServes) {
  apps::AppSpec spec = apps::make_wish();
  apps::OriginServer origin(&spec);
  LiveOriginServer server(&origin);
  TestClient client(server.port(), "u1");

  http::Request req;
  req.method = "POST";
  req.uri = http::Uri::parse("https://" + spec.endpoint("feed").host + "/api/get-feed");
  req.uri.add_query_param("offset", "0");
  req.uri.add_query_param("count", "30");
  req.set_form_fields({{"_client", "android"}, {"_ver", "4.13.0"}});
  ASSERT_TRUE(client.send(req).ok());

  const auto scrape = client.send(admin_request("/appx/metrics"));
  ASSERT_EQ(scrape.status, 200);
  const auto metrics = parse_prometheus(scrape.body);
  EXPECT_EQ(metrics.at("appx_origin_requests_total"), 1.0);
  EXPECT_GE(metrics.at("appx_origin_serve_us_count"), 1.0);
  server.stop();
}

// --- Zero-copy data plane (DESIGN.md §5h) -------------------------------------

// A keep-alive connection runs many requests through one Conn: the
// per-request arena resets and the parser pin/unpin cycle must leave no
// state behind between requests (stale views, stuck pins, or unmerged
// overflow bytes would corrupt a later request on the same connection).
TEST_F(LiveProxyTest, KeepAliveConnectionServesManyRequestsThroughOneArena) {
  TestClient client(proxy_server_->port(), "u1");
  ASSERT_TRUE(client.send(feed_request()).ok());
  client.send(detail_request(0));
  proxy_server_->drain_prefetches();
  const std::string expected = origin_.serve(detail_request(1)).body.str();
  for (int round = 0; round < 20; ++round) {
    const auto response = client.send(detail_request(1));
    ASSERT_TRUE(response.ok()) << "round " << round;
    EXPECT_EQ(response.headers.get("X-Appx-Cache").value(), "hit") << "round " << round;
    ASSERT_EQ(response.body, expected) << "round " << round;
  }
}

// The refcounted slab keeps a served body alive independently of the cache
// entry it came from: tearing the whole proxy (and with it every per-user
// PrefetchCache) down while responses are still being read must not yield
// corrupt bytes on connections that were already answered.
TEST_F(LiveProxyTest, CachedBodySurvivesProxyTeardownRace) {
  TestClient client(proxy_server_->port(), "u1");
  ASSERT_TRUE(client.send(feed_request()).ok());
  client.send(detail_request(0));
  proxy_server_->drain_prefetches();
  const std::string expected = origin_.serve(detail_request(1)).body.str();
  const auto hit = client.send(detail_request(1));
  EXPECT_EQ(hit.headers.get("X-Appx-Cache").value(), "hit");
  EXPECT_EQ(hit.body, expected);
  // Destroy the server (cache included) immediately after the hit; the
  // response already read must be intact — its slab owns the bytes.
  proxy_server_.reset();
  EXPECT_EQ(hit.body, expected);
}

// Hit and miss markers are stamped at serialize time (no header mutation on
// the cached response object): the cached entry must keep serving 'hit'
// after a round-trip, and the stored response must not accumulate markers.
// --- listen backlog (scale-blocking bugfix: the hardcoded 64) ----------------

// Fires `total` non-blocking connects at `port` and returns how many complete
// within `wait_ms`. The target listener never accepts, so completions are
// bounded by the kernel accept queue — i.e. by listen(2)'s backlog argument.
std::size_t burst_connect(std::uint16_t port, std::size_t total, int wait_ms) {
  std::vector<TcpStream> streams;
  std::vector<pollfd> fds;
  streams.reserve(total);
  fds.reserve(total);
  for (std::size_t i = 0; i < total; ++i) {
    streams.push_back(TcpStream::begin_connect("127.0.0.1", port));
    fds.push_back({streams.back().fd(), POLLOUT, 0});
  }
  const auto deadline = std::chrono::steady_clock::now() + std::chrono::milliseconds(wait_ms);
  std::size_t established = 0;
  std::vector<bool> done(total, false);
  while (established < total) {
    const auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
        deadline - std::chrono::steady_clock::now());
    if (left.count() <= 0) break;
    const int ready = ::poll(fds.data(), fds.size(), static_cast<int>(left.count()));
    if (ready <= 0) break;
    bool progressed = false;
    for (std::size_t i = 0; i < total; ++i) {
      if (done[i] || (fds[i].revents & (POLLOUT | POLLERR | POLLHUP)) == 0) continue;
      done[i] = true;
      fds[i].fd = -1;  // poll ignores negative fds
      progressed = true;
      if (streams[i].connect_result() == 0) ++established;
    }
    if (!progressed) break;
  }
  return established;
}

TEST(TcpListenerBacklog, BurstBeyondShortBacklogIsDropped) {
  // A listener that never accepts: connects complete only while the kernel
  // accept queue has room. With the seed's hardcoded backlog of 64, a burst
  // of 256 strands most of the clients in SYN retry (this is the regression
  // this test pins); the default (SOMAXCONN) must absorb the whole burst.
  constexpr std::size_t kBurst = 256;
  TcpListener short_backlog(0, /*reuse_port=*/false, /*backlog=*/64);
  const std::size_t through_short = burst_connect(short_backlog.port(), kBurst, 400);
  EXPECT_LT(through_short, kBurst)
      << "a 64-deep accept queue absorbed a 256-connection burst; "
         "kernel backlog semantics changed?";

  TcpListener default_backlog(0, /*reuse_port=*/false, /*backlog=*/0);  // SOMAXCONN
  const std::size_t through_default = burst_connect(default_backlog.port(), kBurst, 2000);
  EXPECT_EQ(through_default, kBurst);
  short_backlog.close();
  default_backlog.close();
}

TEST(TcpStreamConnect, BeginConnectCompletesAgainstAListener) {
  TcpListener listener(0);
  TcpStream stream = TcpStream::begin_connect("127.0.0.1", listener.port());
  pollfd pfd{stream.fd(), POLLOUT, 0};
  ASSERT_GT(::poll(&pfd, 1, 2000), 0);
  EXPECT_EQ(stream.connect_result(), 0);
  listener.close();
}

TEST(TcpStreamConnect, BeginConnectReportsRefusal) {
  // Bind-then-close: the port is (briefly) guaranteed unoccupied.
  std::uint16_t dead_port;
  {
    TcpListener listener(0);
    dead_port = listener.port();
    listener.close();
  }
  TcpStream stream = TcpStream::begin_connect("127.0.0.1", dead_port);
  pollfd pfd{stream.fd(), POLLOUT, 0};
  ASSERT_GT(::poll(&pfd, 1, 2000), 0);
  EXPECT_EQ(stream.connect_result(), ECONNREFUSED);
}

TEST(TcpStreamConnect, BeginConnectRejectsBadAddress) {
  EXPECT_THROW(TcpStream::begin_connect("not-an-ip", 80), Error);
}

// --- RLIMIT_NOFILE detection (scale-blocking bugfix: EMFILE mid-run) ---------

// Restores the process fd limits on scope exit, whatever the test did.
class FdLimitGuard {
 public:
  FdLimitGuard() { ::getrlimit(RLIMIT_NOFILE, &saved_); }
  ~FdLimitGuard() { ::setrlimit(RLIMIT_NOFILE, &saved_); }

  rlim_t hard() const { return saved_.rlim_max; }
  void lower_soft(rlim_t soft) {
    rlimit lowered = saved_;
    lowered.rlim_cur = soft;
    ASSERT_EQ(::setrlimit(RLIMIT_NOFILE, &lowered), 0);
  }

 private:
  rlimit saved_{};
};

TEST(FdLimits, EnsureCapacityRaisesLoweredSoftLimit) {
  FdLimitGuard guard;
  guard.lower_soft(64);
  ASSERT_EQ(fd_limits().soft, 64u);
  const util::Error err = ensure_fd_capacity(1024);
  EXPECT_TRUE(err.ok()) << err.message();
  EXPECT_GE(fd_limits().soft, 1024u);
}

TEST(FdLimits, FailsFastWithActionableErrorBeyondHardLimit) {
  FdLimitGuard guard;
  const std::size_t beyond = static_cast<std::size_t>(guard.hard()) + 1;
  const util::Error err = ensure_fd_capacity(beyond);
  ASSERT_FALSE(err.ok());
  // Actionable: names the limit and tells the operator how to raise it.
  EXPECT_NE(err.message().find("RLIMIT_NOFILE"), std::string::npos) << err.message();
  EXPECT_NE(err.message().find("ulimit"), std::string::npos) << err.message();
  EXPECT_NE(err.message().find(std::to_string(beyond)), std::string::npos) << err.message();
}

TEST(FdLimits, ZeroSkipsTheCheck) {
  EXPECT_TRUE(ensure_fd_capacity(0).ok());
}

TEST(FdLimits, ServerConstructionFailsFastWhenDescriptorsCannotBeSecured) {
  // A proxy configured for more connections than the hard limit permits must
  // refuse to start with the rlimit error, not die with EMFILE at ~1k conns.
  FdLimitGuard guard;
  const apps::AppSpec spec = apps::make_wish();
  const analysis::AnalysisResult analysis = analysis::analyze(apps::compile_app(spec));
  core::ProxyConfig config;
  core::EngineOptions options;
  options.min_file_descriptors = static_cast<std::size_t>(guard.hard()) + 1;
  core::ShardedProxyEngine engine(&analysis.signatures, &config, options);
  try {
    LiveProxyServer proxy(&engine, {}, 0, options);
    FAIL() << "LiveProxyServer started despite an unsatisfiable fd requirement";
  } catch (const InvalidArgumentError& e) {
    EXPECT_NE(std::string(e.what()).find("RLIMIT_NOFILE"), std::string::npos) << e.what();
  }
}

TEST_F(LiveProxyTest, CacheMarkersDoNotAccumulateOnTheStoredResponse) {
  TestClient client(proxy_server_->port(), "u1");
  ASSERT_TRUE(client.send(feed_request()).ok());
  client.send(detail_request(0));
  proxy_server_->drain_prefetches();
  for (int round = 0; round < 3; ++round) {
    const auto response = client.send(detail_request(1));
    EXPECT_EQ(response.headers.get("X-Appx-Cache").value(), "hit");
    // Exactly one marker on the wire: a second would have been parsed over
    // the first, so probe the raw header multiset via re-serialization.
    std::size_t markers = 0;
    for (const auto& [name, value] : response.headers.items()) {
      if (name == "X-Appx-Cache") ++markers;
    }
    EXPECT_EQ(markers, 1u) << "round " << round;
  }
}

// --- EventLoop conformance suite (DESIGN.md §5g/§5l) ------------------------
//
// Both backends must honor the same contract: level-triggered fd masks,
// del_fd-from-own-callback safety, stale events for deleted handlers dropped,
// timer lazy-cancel, cross-thread post with the stop-with-final-drain
// guarantee. The suite runs once per backend; the uring instantiation skips
// on kernels without io_uring support.

// Polls `cond` until true or the deadline passes.
bool wait_for_cond(const std::function<bool()>& cond,
                   std::chrono::milliseconds limit = std::chrono::milliseconds(5000)) {
  const auto deadline = std::chrono::steady_clock::now() + limit;
  while (!cond()) {
    if (std::chrono::steady_clock::now() > deadline) return false;
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  return true;
}

class EventLoopConformance : public ::testing::TestWithParam<const char*> {
 protected:
  void SetUp() override {
    if (GetParam() == std::string_view("uring") && !uring_supported()) {
      GTEST_SKIP() << "kernel lacks io_uring support (or APPX_NO_URING=1)";
    }
    loop_ = make_event_loop(GetParam());
    runner_ = std::thread([this] { loop_->run(); });
  }

  void TearDown() override {
    if (loop_ && runner_.joinable()) {
      loop_->stop();
      runner_.join();
    }
  }

  // Runs `fn` on the loop thread and waits for it to finish (the fd and
  // timer APIs are loop-thread-only).
  void on_loop(std::function<void()> fn) {
    std::promise<void> done;
    loop_->post([&] {
      fn();
      done.set_value();
    });
    done.get_future().wait();
  }

  // A connected AF_UNIX pair; [0] is watched by the loop, [1] driven by the
  // test thread.
  struct Pair {
    Pair() { EXPECT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0); }
    ~Pair() {
      ::close(fds[0]);
      ::close(fds[1]);
    }
    void poke() const { EXPECT_EQ(::write(fds[1], "x", 1), 1); }
    int fds[2] = {-1, -1};
  };

  std::unique_ptr<EventLoop> loop_;
  std::thread runner_;
};

TEST_P(EventLoopConformance, ReportsItsBackendName) {
  EXPECT_EQ(loop_->backend_name(), std::string_view(GetParam()));
}

TEST_P(EventLoopConformance, StopDrainsTasksQueuedWithIt) {
  // The header contract: tasks already queued when stop() is observed still
  // run. A close-all posted immediately before stop must execute.
  std::atomic<bool> final_task_ran{false};
  loop_->post([&] {
    loop_->post([&] { final_task_ran.store(true); });
    loop_->stop();
  });
  runner_.join();
  EXPECT_TRUE(final_task_ran.load());
}

TEST_P(EventLoopConformance, DelFdFromOwnCallbackIsSafe) {
  // Level-triggered with the byte left unread: without the del_fd the
  // callback would storm. Exactly one delivery proves deregistration from
  // inside the handler works and the handler body is not use-after-freed.
  Pair pair;
  std::atomic<int> fires{0};
  on_loop([&] {
    loop_->add_fd(pair.fds[0], EPOLLIN, [&, fd = pair.fds[0]](std::uint32_t) {
      fires.fetch_add(1);
      loop_->del_fd(fd);
    });
  });
  pair.poke();
  ASSERT_TRUE(wait_for_cond([&] { return fires.load() >= 1; }));
  pair.poke();
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  EXPECT_EQ(fires.load(), 1);
  EXPECT_EQ(loop_->fd_count(), 0u);
  // Barrier: order the loop thread's del_fd before ~Pair closes the fd.
  on_loop([] {});
}

TEST_P(EventLoopConformance, StaleEventForHandlerDeletedMidBatchIsDropped) {
  // Both fds become ready in the same kernel batch; whichever handler runs
  // first deletes the other. The deleted handler's already-harvested event
  // must be dropped, not dispatched into a dead registration.
  Pair a;
  Pair b;
  std::atomic<int> fires{0};
  on_loop([&] {
    const auto kill_other = [&](int own, int other) {
      return [&, own, other](std::uint32_t) {
        fires.fetch_add(1);
        loop_->del_fd(other);
        loop_->del_fd(own);
      };
    };
    loop_->add_fd(a.fds[0], EPOLLIN, kill_other(a.fds[0], b.fds[0]));
    loop_->add_fd(b.fds[0], EPOLLIN, kill_other(b.fds[0], a.fds[0]));
  });
  a.poke();
  b.poke();
  ASSERT_TRUE(wait_for_cond([&] { return fires.load() >= 1; }));
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  EXPECT_EQ(fires.load(), 1);
  EXPECT_EQ(loop_->fd_count(), 0u);
  // Barrier: order the loop thread's del_fds before the Pairs close the fds.
  on_loop([] {});
}

TEST_P(EventLoopConformance, ModFdTogglesInterest) {
  // Watch an empty-but-writable socket for EPOLLIN only (silent), then
  // toggle to EPOLLOUT: exactly one writable delivery, after which the
  // callback toggles back to quiesce the level-triggered writability.
  Pair pair;
  std::atomic<int> fires{0};
  on_loop([&] {
    loop_->add_fd(pair.fds[0], EPOLLIN, [&, fd = pair.fds[0]](std::uint32_t events) {
      if ((events & EPOLLOUT) != 0) {
        fires.fetch_add(1);
        loop_->mod_fd(fd, EPOLLIN);
      }
    });
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_EQ(fires.load(), 0);
  on_loop([&] { loop_->mod_fd(pair.fds[0], EPOLLOUT); });
  ASSERT_TRUE(wait_for_cond([&] { return fires.load() >= 1; }));
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  EXPECT_EQ(fires.load(), 1);
  on_loop([&] { loop_->del_fd(pair.fds[0]); });
}

TEST_P(EventLoopConformance, CancelledTimerNeverFires) {
  std::atomic<bool> cancelled_ran{false};
  std::atomic<bool> kept_ran{false};
  on_loop([&] {
    const auto now = std::chrono::steady_clock::now();
    const std::uint64_t id =
        loop_->add_timer(now + std::chrono::milliseconds(20), [&] { cancelled_ran.store(true); });
    loop_->add_timer(now + std::chrono::milliseconds(60), [&] { kept_ran.store(true); });
    loop_->cancel_timer(id);  // lazy: the heap entry stays, the task must not run
  });
  ASSERT_TRUE(wait_for_cond([&] { return kept_ran.load(); }));
  EXPECT_FALSE(cancelled_ran.load());
}

TEST_P(EventLoopConformance, PostFromManyThreadsRunsEveryTask) {
  // Hammers the armed-flag wake elision: coalesced wakeups must never lose a
  // task, whatever the interleaving of posters and sleep cycles.
  constexpr int kThreads = 8;
  constexpr int kPostsPerThread = 500;
  std::atomic<int> ran{0};
  std::vector<std::thread> posters;
  posters.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    posters.emplace_back([&] {
      for (int i = 0; i < kPostsPerThread; ++i) loop_->post([&] { ran.fetch_add(1); });
    });
  }
  for (std::thread& t : posters) t.join();
  ASSERT_TRUE(wait_for_cond([&] { return ran.load() == kThreads * kPostsPerThread; }));
  EXPECT_EQ(loop_->pending_tasks(), 0u);
}

INSTANTIATE_TEST_SUITE_P(Backends, EventLoopConformance, ::testing::Values("epoll", "uring"));

TEST(IoBackendResolve, RejectsUnknownNames) {
  EXPECT_THROW(resolve_io_backend("iocp"), InvalidArgumentError);
}

TEST(IoBackendResolve, AutoPicksUringExactlyWhenSupported) {
  EXPECT_EQ(resolve_io_backend("auto"), uring_supported() ? "uring" : "epoll");
}

TEST(IoBackendResolve, ExplicitUringNeverSilentlyDegrades) {
  if (uring_supported()) GTEST_SKIP() << "kernel supports io_uring; nothing to refuse";
  EXPECT_THROW(make_event_loop("uring"), Error);
}

// --- uring completion-op extension (DESIGN.md §5l) --------------------------

class UringCompletionOps : public ::testing::Test {
 protected:
  void SetUp() override {
    if (!uring_supported()) GTEST_SKIP() << "kernel lacks io_uring support";
    loop_ = make_uring_event_loop();
    ASSERT_TRUE(loop_->supports_completions());
    runner_ = std::thread([this] { loop_->run(); });
  }
  void TearDown() override {
    if (loop_ && runner_.joinable()) {
      loop_->stop();
      runner_.join();
    }
  }
  void on_loop(std::function<void()> fn) {
    std::promise<void> done;
    loop_->post([&] {
      fn();
      done.set_value();
    });
    done.get_future().wait();
  }
  std::unique_ptr<EventLoop> loop_;
  std::thread runner_;
};

TEST_F(UringCompletionOps, RecvSendmsgRoundTripOnCallerOwnedBuffers) {
  int sv[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, sv), 0);

  // recv completes with the bytes the peer wrote into the caller's buffer.
  char buf[16] = {};
  std::promise<int> recv_res;
  on_loop([&] {
    ASSERT_TRUE(loop_->submit_recv(sv[0], buf, sizeof buf,
                                   [&](int res) { recv_res.set_value(res); }));
  });
  ASSERT_EQ(::write(sv[1], "ping", 4), 4);
  ASSERT_EQ(recv_res.get_future().get(), 4);
  EXPECT_EQ(std::string_view(buf, 4), "ping");

  // sendmsg of a caller-owned iovec lands on the peer.
  const char reply[] = "pong!";
  struct iovec iov { const_cast<char*>(reply), 5 };
  struct msghdr msg {};
  msg.msg_iov = &iov;
  msg.msg_iovlen = 1;
  std::promise<int> send_res;
  on_loop([&] {
    ASSERT_TRUE(loop_->submit_sendmsg(sv[0], &msg, [&](int res) { send_res.set_value(res); }));
  });
  ASSERT_EQ(send_res.get_future().get(), 5);
  char peer[16] = {};
  ASSERT_EQ(::read(sv[1], peer, sizeof peer), 5);
  EXPECT_EQ(std::string_view(peer, 5), "pong!");

  // cancel_fd drops a parked recv without invoking its callback.
  std::atomic<bool> cancelled_cb_ran{false};
  on_loop([&] {
    ASSERT_TRUE(
        loop_->submit_recv(sv[0], buf, sizeof buf, [&](int) { cancelled_cb_ran.store(true); }));
  });
  on_loop([&] { loop_->cancel_fd(sv[0]); });
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  EXPECT_FALSE(cancelled_cb_ran.load());
  ::close(sv[0]);
  ::close(sv[1]);
}

TEST_F(UringCompletionOps, CancelStormDropsEveryPendingCallback) {
  // Regression: cancel_fd used to range-iterate the op table while inserting
  // cancel ops into it — enough simultaneous closes rehash the map mid-walk.
  // Queue enough in-flight ops that the burst of cancel insertions forces a
  // rehash, then cancel everything in one task drain.
  constexpr int kPairs = 48;
  int sv[kPairs][2];
  for (auto& p : sv) ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, p), 0);
  static char buf[64];
  std::atomic<int> cb_ran{0};
  on_loop([&] {
    for (auto& p : sv) {
      for (int i = 0; i < 4; ++i) {
        ASSERT_TRUE(
            loop_->submit_recv(p[0], buf, sizeof buf, [&](int) { cb_ran.fetch_add(1); }));
      }
    }
  });
  on_loop([&] {
    for (auto& p : sv) loop_->cancel_fd(p[0]);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  EXPECT_EQ(cb_ran.load(), 0);
  for (auto& p : sv) {
    ::close(p[0]);
    ::close(p[1]);
  }
}

TEST_F(UringCompletionOps, ReAddingAnFdReplacesTheHandlerWithoutDoubleCounting) {
  // Regression: add_fd on an already-registered fd used to orphan the old
  // poll op (one stale callback delivery) and double-increment fd_count.
  int sv[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, sv), 0);
  std::atomic<int> old_hits{0};
  std::atomic<int> new_hits{0};
  on_loop([&] {
    loop_->add_fd(sv[0], EPOLLIN, [&](std::uint32_t) { old_hits.fetch_add(1); });
    loop_->add_fd(sv[0], EPOLLIN, [&](std::uint32_t) {
      char drain[8];
      ::read(sv[0], drain, sizeof drain);  // drain the single byte (blocking fd)
      new_hits.fetch_add(1);
    });
  });
  EXPECT_EQ(loop_->fd_count(), 1u);
  ASSERT_EQ(::write(sv[1], "x", 1), 1);
  ASSERT_TRUE(wait_for_cond([&] { return new_hits.load() >= 1; }));
  EXPECT_EQ(old_hits.load(), 0);
  on_loop([&] { loop_->del_fd(sv[0]); });
  EXPECT_EQ(loop_->fd_count(), 0u);
  ::close(sv[0]);
  ::close(sv[1]);
}

TEST_F(UringCompletionOps, MultishotAcceptDeliversEveryConnection) {
  TcpListener listener(0);
  std::atomic<int> accepted{0};
  std::vector<int> fds;
  std::mutex fds_mutex;
  on_loop([&] {
    ASSERT_TRUE(loop_->submit_accept(listener.fd(), [&](int fd) {
      if (fd < 0) return;
      const std::lock_guard<std::mutex> lock(fds_mutex);
      fds.push_back(fd);
      accepted.fetch_add(1);
    }));
  });
  std::vector<TcpStream> clients;
  for (int i = 0; i < 5; ++i) {
    clients.push_back(TcpStream::connect("127.0.0.1", listener.port()));
  }
  ASSERT_TRUE(wait_for_cond([&] { return accepted.load() == 5; }));
  on_loop([&] { loop_->cancel_fd(listener.fd()); });
  const std::lock_guard<std::mutex> lock(fds_mutex);
  for (const int fd : fds) ::close(fd);
}

}  // namespace
}  // namespace appx::net
