// Tests for the static analysis engine (paper §4.1): signature extraction,
// dependency inference, Intent/Rx/alias extensions and their ablations.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "analysis/analyzer.hpp"
#include "util/error.hpp"

namespace appx::analysis {
namespace {

using ir::MethodBuilder;
using ir::Program;
using ir::Reg;

// A miniature Wish app in SAPK IR exercising every analysis feature:
//   feed (entry)      GET  https://{env host}/api/get-feed
//     '-> flatMap over data.products: per-item image request + Intent put
//   detail (entry)    POST https://{env host}/product/get, cid via Intent,
//                     heap-object chain with a post-move alias write,
//                     conditional credit_id field (Fig. 8)
//     '-> merchant name feeds the related request (chain depth 2)
Program make_mini_wish() {
  Program p;
  p.app = "com.wish.mini";

  {
    MethodBuilder b("FeedActivity.onCreate");
    const Reg url =
        b.concat({b.const_str("https://"), b.env("api_host"), b.const_str("/api/get-feed")});
    const Reg req = b.http_new();
    b.http_method(req, "GET");
    b.http_url(req, url);
    b.http_query(req, "offset", b.const_str("0"));
    b.http_header(req, "Cookie", b.env("cookie"));
    b.http_header(req, "User-Agent", b.env("user_agent"));
    const Reg resp = b.http_send(req, "wish.feed", "json");
    const Reg products = b.json_get(resp, "data.products");
    b.rx_flat_map(products, "FeedActivity.onItem");
    b.ret(resp);
    p.methods.push_back(b.build());
  }
  {
    MethodBuilder b("FeedActivity.onItem", 1);
    const Reg id = b.json_get(b.param(0), "product_info.id");
    const Reg url = b.concat({b.const_str("https://"), b.env("img_host"), b.const_str("/img")});
    const Reg req = b.http_new();
    b.http_method(req, "GET");
    b.http_url(req, url);
    b.http_query(req, "cid", id);
    b.http_send(req, "wish.image", "opaque");
    b.intent_put("item_id", id);  // cross-component flow to DetailActivity
    b.ret(id);
    p.methods.push_back(b.build());
  }
  {
    MethodBuilder b("DetailActivity.onCreate");
    const Reg id = b.intent_get("item_id");
    // Heap chain with a write through an alias AFTER the move: only the
    // alias-aware analysis tracks the cid to the request body.
    const Reg opts = b.new_object("RequestOptions");
    b.put_field(opts, "cid", id);
    const Reg wrapper = b.new_object("RequestWrapper");
    const Reg alias = b.move(wrapper);
    b.put_field(wrapper, "opts", opts);           // write through original
    const Reg opts2 = b.get_field(alias, "opts");  // read through alias
    const Reg cid = b.get_field(opts2, "cid");

    const Reg url =
        b.concat({b.const_str("https://"), b.env("api_host"), b.const_str("/product/get")});
    const Reg req = b.http_new();
    b.http_method(req, "POST");
    b.http_url(req, url);
    b.http_body(req, "cid", cid);
    b.http_body(req, "_client", b.env("client"));
    b.http_body(req, "_build", b.const_str("amazon"));
    b.if_env("has_credit");
    b.http_body(req, "credit_id", b.env("credit_id"));
    b.end_if();
    const Reg resp = b.http_send(req, "wish.product", "json");
    const Reg merchant = b.json_get(resp, "data.contest.merchant_name");
    b.invoke("DetailActivity.loadMerchant", {merchant});
    b.ret(resp);
    p.methods.push_back(b.build());
  }
  {
    MethodBuilder b("DetailActivity.loadMerchant", 1);
    const Reg url =
        b.concat({b.const_str("https://"), b.env("api_host"), b.const_str("/related/get")});
    const Reg req = b.http_new();
    b.http_method(req, "POST");
    b.http_url(req, url);
    b.http_body(req, "merchant", b.param(0));
    const Reg resp = b.http_send(req, "wish.related", "json");
    b.ret(resp);
    p.methods.push_back(b.build());
  }
  p.entry_points = {"FeedActivity.onCreate", "DetailActivity.onCreate"};
  return p;
}

const core::TransactionSignature& by_label(const AnalysisResult& r, std::string_view label) {
  const auto* sig = r.signatures.find_by_label(label);
  EXPECT_NE(sig, nullptr) << "missing signature " << label;
  if (sig == nullptr) throw std::runtime_error("missing signature");
  return *sig;
}

TEST(Analyzer, ExtractsAllSendSites) {
  const auto result = analyze(make_mini_wish());
  EXPECT_EQ(result.signatures.size(), 4u);
  EXPECT_EQ(result.report.send_sites, 4u);
  EXPECT_EQ(result.report.unique_signatures, 4u);
  EXPECT_EQ(result.report.methods_analyzed, 4u);
  EXPECT_GT(result.report.instructions_interpreted, 0u);
}

TEST(Analyzer, FeedSignatureShape) {
  const auto result = analyze(make_mini_wish());
  const auto& feed = by_label(result, "wish.feed");
  EXPECT_EQ(feed.request.method, "GET");
  EXPECT_EQ(feed.request.scheme.concrete_value().value(), "https");
  EXPECT_EQ(feed.request.host.hole_count(), 1u);  // env api_host
  EXPECT_EQ(feed.request.path.concrete_value().value(), "/api/get-feed");
  ASSERT_EQ(feed.request.query.size(), 1u);
  EXPECT_EQ(feed.request.query[0].name, "offset");
  EXPECT_EQ(feed.request.query[0].value.concrete_value().value(), "0");
  ASSERT_EQ(feed.request.headers.size(), 2u);
  EXPECT_EQ(feed.request.headers[0].name, "Cookie");
  EXPECT_EQ(feed.request.headers[0].value.hole_count(), 1u);
  // Response schema: the leaf path read through flatMap elements.
  ASSERT_EQ(feed.response.fields.size(), 1u);
  EXPECT_EQ(feed.response.fields[0].path, "data.products[*].product_info.id");
}

TEST(Analyzer, EnvHolesShareNamesAcrossSignatures) {
  const auto result = analyze(make_mini_wish());
  const auto& feed = by_label(result, "wish.feed");
  const auto& product = by_label(result, "wish.product");
  // Both hosts come from env api_host: identical hole names.
  EXPECT_EQ(feed.request.host.hole_names(), product.request.host.hole_names());
}

TEST(Analyzer, DependencyEdges) {
  const auto result = analyze(make_mini_wish());
  const auto& feed = by_label(result, "wish.feed");
  const auto& image = by_label(result, "wish.image");
  const auto& product = by_label(result, "wish.product");
  const auto& related = by_label(result, "wish.related");

  EXPECT_EQ(result.signatures.edges().size(), 3u);

  const auto to_image = result.signatures.edges_to(image.id);
  ASSERT_EQ(to_image.size(), 1u);
  EXPECT_EQ(to_image[0]->pred_id, feed.id);
  EXPECT_EQ(to_image[0]->pred_path, "data.products[*].product_info.id");

  // Intent-mediated: feed -> product.
  const auto to_product = result.signatures.edges_to(product.id);
  ASSERT_EQ(to_product.size(), 1u);
  EXPECT_EQ(to_product[0]->pred_id, feed.id);
  EXPECT_EQ(to_product[0]->pred_path, "data.products[*].product_info.id");

  const auto to_related = result.signatures.edges_to(related.id);
  ASSERT_EQ(to_related.size(), 1u);
  EXPECT_EQ(to_related[0]->pred_id, product.id);
  EXPECT_EQ(to_related[0]->pred_path, "data.contest.merchant_name");

  EXPECT_EQ(result.signatures.max_chain_length(), 2u);
  EXPECT_EQ(result.signatures.prefetchable().size(), 3u);
}

TEST(Analyzer, ConditionalFieldIsOptional) {
  const auto result = analyze(make_mini_wish());
  const auto& product = by_label(result, "wish.product");
  const auto credit =
      std::find_if(product.request.body.begin(), product.request.body.end(),
                   [](const core::RequestField& f) { return f.name == "credit_id"; });
  ASSERT_NE(credit, product.request.body.end());
  EXPECT_TRUE(credit->optional);
  const auto cid = std::find_if(product.request.body.begin(), product.request.body.end(),
                                [](const core::RequestField& f) { return f.name == "cid"; });
  ASSERT_NE(cid, product.request.body.end());
  EXPECT_FALSE(cid->optional);
}

TEST(Analyzer, OpaqueResponseKind) {
  const auto result = analyze(make_mini_wish());
  EXPECT_EQ(by_label(result, "wish.image").response.body_kind, core::ResponseBodyKind::kOpaque);
  EXPECT_EQ(by_label(result, "wish.feed").response.body_kind, core::ResponseBodyKind::kJson);
}

TEST(Analyzer, BackwardSlicesCoverContributingMethods) {
  const auto result = analyze(make_mini_wish());
  const auto& product_slice = result.slices.at("wish.product");
  EXPECT_FALSE(product_slice.empty());
  // The cid flows from FeedActivity.onItem through the intent map: the slice
  // must reach back into that method (inter-component slicing).
  EXPECT_TRUE(std::any_of(product_slice.begin(), product_slice.end(), [](const SliceEntry& e) {
    return e.method == "FeedActivity.onItem";
  }));
  EXPECT_TRUE(std::any_of(product_slice.begin(), product_slice.end(), [](const SliceEntry& e) {
    return e.method == "DetailActivity.onCreate";
  }));
}

TEST(Analyzer, SapkRoundTripMatchesDirectAnalysis) {
  const Program p = make_mini_wish();
  const auto direct = analyze(p);
  const auto via_blob = analyze_sapk(p.serialize());
  EXPECT_EQ(via_blob.signatures.size(), direct.signatures.size());
  EXPECT_EQ(via_blob.signatures.edges().size(), direct.signatures.edges().size());
  for (const auto& sig : direct.signatures.all()) {
    EXPECT_NE(via_blob.signatures.find(sig->id), nullptr);
  }
}

TEST(Analyzer, FormatBuildsTemplatesLikeConcat) {
  // String.format-built URLs must analyze identically to concat-built ones:
  // literal pieces become literals, env args become run-time holes, response
  // args become dependency edges.
  Program p;
  p.app = "x";
  {
    MethodBuilder b("C.main");
    const Reg req = b.http_new();
    b.http_url(req, b.const_str("https://a.example/list"));
    const Reg resp = b.http_send(req, "x.list", "json");
    const Reg id = b.json_get(resp, "items[*].id");
    b.invoke("C.item", {id});
    p.methods.push_back(b.build());
  }
  {
    MethodBuilder b("C.item", 1);
    const Reg url = b.format("https://%s/item/%s/view", {b.env("host"), b.param(0)});
    const Reg req = b.http_new();
    b.http_url(req, url);
    b.http_send(req, "x.item", "json");
    p.methods.push_back(b.build());
  }
  p.entry_points = {"C.main"};

  const auto result = analyze(p);
  const auto* item = result.signatures.find_by_label("x.item");
  ASSERT_NE(item, nullptr);
  // Host is a hole, the path embeds a dependency hole between literals.
  EXPECT_EQ(item->request.host.hole_count(), 1u);
  EXPECT_EQ(item->request.path.hole_count(), 1u);
  EXPECT_EQ(item->request.path.segments().front().text, "/item/");
  EXPECT_EQ(item->request.path.segments().back().text, "/view");
  const auto edges = result.signatures.edges_to(item->id);
  ASSERT_EQ(edges.size(), 1u);
  EXPECT_EQ(edges[0]->pred_path, "items[*].id");
}

// --- ablations (DESIGN.md §6) -------------------------------------------------------

TEST(AnalyzerAblation, WithoutIntentSupportLosesCrossComponentEdge) {
  AnalysisOptions options;
  options.intent_support = false;
  const auto result = analyze(make_mini_wish(), options);
  const auto& product = by_label(result, "wish.product");
  EXPECT_TRUE(result.signatures.edges_to(product.id).empty());
  // image and related edges survive.
  EXPECT_EQ(result.signatures.edges().size(), 2u);
  EXPECT_GT(result.report.unresolved_values, 0u);
}

TEST(AnalyzerAblation, WithoutRxSupportLosesPerItemEdges) {
  AnalysisOptions options;
  options.rx_support = false;
  const auto result = analyze(make_mini_wish(), options);
  // flatMap is opaque: the image request is never discovered (its builder
  // lives in the un-walked callback), and the intent value is unknown.
  EXPECT_EQ(result.signatures.find_by_label("wish.image"), nullptr);
  const auto& product = by_label(result, "wish.product");
  EXPECT_TRUE(result.signatures.edges_to(product.id).empty());
}

TEST(AnalyzerAblation, WithoutAliasAnalysisLosesHeapChainedDependency) {
  AnalysisOptions options;
  options.alias_analysis = false;
  const auto result = analyze(make_mini_wish(), options);
  const auto& product = by_label(result, "wish.product");
  // The cid reached the request through a write-after-move alias; without
  // alias analysis the dependency is lost (cid becomes a run-time hole).
  EXPECT_TRUE(result.signatures.edges_to(product.id).empty());
  // Fully-enabled analysis finds it (guard against fixture rot).
  const auto full = analyze(make_mini_wish());
  EXPECT_FALSE(full.signatures.edges_to(by_label(full, "wish.product").id).empty());
}

TEST(AnalyzerAblation, FullAnalysisFindsStrictlyMore) {
  const auto full = analyze(make_mini_wish());
  for (const bool flag : {true}) {
    (void)flag;
  }
  AnalysisOptions crippled;
  crippled.intent_support = false;
  crippled.rx_support = false;
  crippled.alias_analysis = false;
  const auto min = analyze(make_mini_wish(), crippled);
  EXPECT_GT(full.signatures.edges().size(), min.signatures.edges().size());
  EXPECT_GE(full.signatures.size(), min.signatures.size());
}

// --- robustness ------------------------------------------------------------------------

TEST(Analyzer, UnknownEntryPointThrows) {
  Program p;
  p.app = "x";
  p.entry_points = {"Missing.main"};
  EXPECT_THROW(analyze(p), NotFoundError);
}

TEST(Analyzer, RecursionTerminates) {
  Program p;
  p.app = "x";
  MethodBuilder b("C.loop");
  const Reg v = b.invoke("C.loop", {});
  b.ret(v);
  p.methods.push_back(b.build());
  p.entry_points = {"C.loop"};
  const auto result = analyze(p);  // must not hang or crash
  EXPECT_EQ(result.signatures.size(), 0u);
}

TEST(Analyzer, UrlWithoutSchemeRejected) {
  Program p;
  p.app = "x";
  MethodBuilder b("C.bad");
  const Reg req = b.http_new();
  b.http_url(req, b.const_str("no-scheme/path"));
  b.http_send(req, "bad.sig", "json");
  p.methods.push_back(b.build());
  p.entry_points = {"C.bad"};
  EXPECT_THROW(analyze(p), ParseError);
}

TEST(Analyzer, MergesIdenticalSendSites) {
  // Two call sites issuing byte-identical requests collapse to one signature.
  Program p;
  p.app = "x";
  MethodBuilder helper("C.issue");
  const Reg req = helper.http_new();
  helper.http_url(req, helper.const_str("https://a.com/ping"));
  const Reg resp = helper.http_send(req, "x.ping", "json");
  helper.ret(resp);
  p.methods.push_back(helper.build());

  MethodBuilder direct("C.other");
  const Reg req2 = direct.http_new();
  direct.http_url(req2, direct.const_str("https://a.com/ping"));
  direct.http_send(req2, "x.ping", "json");
  p.methods.push_back(direct.build());

  MethodBuilder main_m("C.main");
  main_m.invoke("C.issue", {});
  main_m.invoke("C.other", {});
  p.methods.push_back(main_m.build());
  p.entry_points = {"C.main"};

  const auto result = analyze(p);
  EXPECT_EQ(result.report.send_sites, 2u);
  EXPECT_EQ(result.signatures.size(), 1u);
}

TEST(Analyzer, PolymorphicCallContextsMergeToOptionalOrUnknown) {
  // One request-building helper invoked with two different constant values:
  // the field's value degrades to a run-time hole, the signature stays one.
  Program p;
  p.app = "x";
  MethodBuilder helper("C.fetch", 1);
  const Reg req = helper.http_new();
  helper.http_url(req, helper.const_str("https://a.com/get"));
  helper.http_query(req, "kind", helper.param(0));
  const Reg resp = helper.http_send(req, "x.get", "json");
  helper.ret(resp);
  p.methods.push_back(helper.build());

  MethodBuilder main_m("C.main");
  main_m.invoke("C.fetch", {main_m.const_str("red")});
  main_m.invoke("C.fetch", {main_m.const_str("blue")});
  p.methods.push_back(main_m.build());
  p.entry_points = {"C.main"};

  const auto result = analyze(p);
  EXPECT_EQ(result.signatures.size(), 1u);
  const auto& sig = *result.signatures.all().front();
  ASSERT_EQ(sig.request.query.size(), 1u);
  EXPECT_EQ(sig.request.query[0].value.hole_count(), 1u);  // merged to hole
}

}  // namespace
}  // namespace appx::analysis
