// Tests for the concrete SAPK interpreter, culminating in the differential
// property against the static analysis: executed traffic ⊆ extracted
// signatures (soundness) and executed traffic covers every reachable
// signature (completeness on the generated apps).
#include <gtest/gtest.h>

#include <set>

#include "analysis/analyzer.hpp"
#include "apps/catalog.hpp"
#include "apps/compiler.hpp"
#include "apps/server.hpp"
#include "ir/interpreter.hpp"
#include "util/error.hpp"

namespace appx::ir {
namespace {

// A canned transport that returns a fixed JSON body for every request.
Interpreter::Transport fixed_transport(std::string body) {
  return [body = std::move(body)](const http::Request&) {
    http::Response resp;
    resp.headers.set("Content-Type", "application/json");
    resp.body = body;
    return resp;
  };
}

ConcreteEnv basic_env() {
  ConcreteEnv env;
  env.values = {{"host", "api.test.example"}, {"cookie", "c0"}};
  return env;
}

Program single_method(Method m, std::vector<std::string> entries = {}) {
  Program p;
  p.app = "com.test";
  if (entries.empty()) entries = {m.name};
  p.methods.push_back(std::move(m));
  p.entry_points = std::move(entries);
  return p;
}

TEST(Interpreter, BuildsAndSendsConcreteRequest) {
  MethodBuilder b("C.main");
  const Reg url = b.concat({b.const_str("https://"), b.env("host"), b.const_str("/ping")});
  const Reg req = b.http_new();
  b.http_method(req, "POST");
  b.http_url(req, url);
  b.http_query(req, "q", b.const_str("1"));
  b.http_header(req, "Cookie", b.env("cookie"));
  b.http_body(req, "k", b.const_str("v"));
  b.http_send(req, "t.ping");
  const Program p = single_method(b.build());

  Interpreter interp(&p, basic_env(), fixed_transport("{}"));
  interp.run_all_entries();
  ASSERT_EQ(interp.requests().size(), 1u);
  const http::Request& sent = interp.requests()[0];
  EXPECT_EQ(sent.method, "POST");
  EXPECT_EQ(sent.uri.host, "api.test.example");
  EXPECT_EQ(sent.uri.path, "/ping");
  EXPECT_EQ(sent.uri.query_param("q").value(), "1");
  EXPECT_EQ(sent.headers.get("Cookie").value(), "c0");
  EXPECT_EQ(sent.form_fields().front().second, "v");
}

TEST(Interpreter, JsonGetFeedsFollowUpRequest) {
  Program p;
  p.app = "com.test";
  {
    MethodBuilder b("C.first");
    const Reg req = b.http_new();
    b.http_url(req, b.concat({b.const_str("https://"), b.env("host"), b.const_str("/a")}));
    const Reg resp = b.http_send(req, "t.a");
    const Reg token = b.json_get(resp, "data.token");
    b.invoke("C.second", {token});
    p.methods.push_back(b.build());
  }
  {
    MethodBuilder b("C.second", 1);
    const Reg req = b.http_new();
    b.http_url(req, b.concat({b.const_str("https://"), b.env("host"), b.const_str("/b")}));
    b.http_query(req, "t", b.param(0));
    b.http_send(req, "t.b");
    p.methods.push_back(b.build());
  }
  p.entry_points = {"C.first"};

  Interpreter interp(&p, basic_env(), fixed_transport(R"({"data":{"token":"xyz"}})"));
  interp.run_all_entries();
  ASSERT_EQ(interp.requests().size(), 2u);
  EXPECT_EQ(interp.requests()[1].uri.query_param("t").value(), "xyz");
}

TEST(Interpreter, WildcardPathReplicatesCalls) {
  Program p;
  p.app = "com.test";
  {
    MethodBuilder b("C.list");
    const Reg req = b.http_new();
    b.http_url(req, b.concat({b.const_str("https://"), b.env("host"), b.const_str("/list")}));
    const Reg resp = b.http_send(req, "t.list");
    const Reg ids = b.json_get(resp, "items[*].id");
    b.invoke("C.item", {ids});
    p.methods.push_back(b.build());
  }
  {
    MethodBuilder b("C.item", 1);
    const Reg req = b.http_new();
    b.http_url(req, b.concat({b.const_str("https://"), b.env("host"), b.const_str("/item")}));
    b.http_query(req, "id", b.param(0));
    b.http_send(req, "t.item");
    p.methods.push_back(b.build());
  }
  p.entry_points = {"C.list"};

  Interpreter interp(&p, basic_env(),
                     fixed_transport(R"({"items":[{"id":"a"},{"id":"b"},{"id":"c"}]})"));
  interp.run_all_entries();
  ASSERT_EQ(interp.requests().size(), 4u);  // list + 3 items
  EXPECT_EQ(interp.requests()[1].uri.query_param("id").value(), "a");
  EXPECT_EQ(interp.requests()[3].uri.query_param("id").value(), "c");
}

TEST(Interpreter, FlatMapIteratesArray) {
  Program p;
  p.app = "com.test";
  {
    MethodBuilder b("C.list");
    const Reg req = b.http_new();
    b.http_url(req, b.concat({b.const_str("https://"), b.env("host"), b.const_str("/list")}));
    const Reg resp = b.http_send(req, "t.list");
    const Reg items = b.json_get(resp, "items");
    b.rx_flat_map(items, "C.onItem");
    p.methods.push_back(b.build());
  }
  {
    MethodBuilder b("C.onItem", 1);
    const Reg id = b.json_get(b.param(0), "id");
    const Reg req = b.http_new();
    b.http_url(req, b.concat({b.const_str("https://"), b.env("host"), b.const_str("/img")}));
    b.http_query(req, "id", id);
    b.http_send(req, "t.img", "opaque");
    p.methods.push_back(b.build());
  }
  p.entry_points = {"C.list"};

  Interpreter interp(&p, basic_env(),
                     fixed_transport(R"({"items":[{"id":"x"},{"id":"y"}]})"));
  interp.run_all_entries();
  ASSERT_EQ(interp.requests().size(), 3u);
  EXPECT_EQ(interp.requests()[2].uri.query_param("id").value(), "y");
}

TEST(Interpreter, FormatSubstitutesArguments) {
  MethodBuilder b("C.main");
  const Reg url = b.format("https://%s/item/%s/view", {b.env("host"), b.const_str("42")});
  const Reg req = b.http_new();
  b.http_url(req, url);
  b.http_send(req, "t.f");
  const Program p = single_method(b.build());
  Interpreter interp(&p, basic_env(), fixed_transport("{}"));
  interp.run_all_entries();
  ASSERT_EQ(interp.requests().size(), 1u);
  EXPECT_EQ(interp.requests()[0].uri.path, "/item/42/view");
  EXPECT_EQ(interp.requests()[0].uri.host, "api.test.example");
}

TEST(Interpreter, IntentCarriesValuesAcrossEntries) {
  Program p;
  p.app = "com.test";
  {
    MethodBuilder b("C.producer");
    b.intent_put("key", b.const_str("carried"));
    p.methods.push_back(b.build());
  }
  {
    MethodBuilder b("C.consumer");
    const Reg v = b.intent_get("key");
    const Reg req = b.http_new();
    b.http_url(req, b.concat({b.const_str("https://"), b.env("host"), b.const_str("/c")}));
    b.http_query(req, "v", v);
    b.http_send(req, "t.c");
    p.methods.push_back(b.build());
  }
  p.entry_points = {"C.producer", "C.consumer"};

  Interpreter interp(&p, basic_env(), fixed_transport("{}"));
  interp.run_all_entries();
  ASSERT_EQ(interp.requests().size(), 1u);
  EXPECT_EQ(interp.requests()[0].uri.query_param("v").value(), "carried");
}

TEST(Interpreter, ConditionalBlocksFollowEnvFlags) {
  MethodBuilder b("C.main");
  const Reg req = b.http_new();
  b.http_url(req, b.concat({b.const_str("https://"), b.env("host"), b.const_str("/x")}));
  b.if_env("extra");
  b.http_query(req, "extra", b.const_str("1"));
  b.end_if();
  b.http_send(req, "t.x");
  const Program p = single_method(b.build());

  Interpreter off(&p, basic_env(), fixed_transport("{}"));
  off.run_all_entries();
  EXPECT_FALSE(off.requests()[0].uri.query_param("extra").has_value());

  ConcreteEnv env = basic_env();
  env.flags.insert("extra");
  Interpreter on(&p, env, fixed_transport("{}"));
  on.run_all_entries();
  EXPECT_TRUE(on.requests()[0].uri.query_param("extra").has_value());
}

TEST(Interpreter, AliasedHeapObjectsShareState) {
  // The concrete counterpart of the alias-analysis fixture: write through
  // the original after a move, read through the alias.
  MethodBuilder b("C.main");
  const Reg holder = b.new_object("Holder");
  const Reg alias = b.move(holder);
  b.put_field(holder, "v", b.const_str("shared"));
  const Reg v = b.get_field(alias, "v");
  const Reg req = b.http_new();
  b.http_url(req, b.concat({b.const_str("https://"), b.env("host"), b.const_str("/y")}));
  b.http_query(req, "v", v);
  b.http_send(req, "t.y");
  const Program p = single_method(b.build());

  Interpreter interp(&p, basic_env(), fixed_transport("{}"));
  interp.run_all_entries();
  EXPECT_EQ(interp.requests()[0].uri.query_param("v").value(), "shared");
}

TEST(Interpreter, MissingEnvValueThrows) {
  MethodBuilder b("C.main");
  b.env("does_not_exist");
  const Program p = single_method(b.build());
  Interpreter interp(&p, basic_env(), fixed_transport("{}"));
  EXPECT_THROW(interp.run_all_entries(), InvalidStateError);
}

TEST(Interpreter, RequestLimitGuardsRunaways) {
  Program p;
  p.app = "com.test";
  {
    MethodBuilder b("C.loop");
    const Reg req = b.http_new();
    b.http_url(req, b.concat({b.const_str("https://"), b.env("host"), b.const_str("/l")}));
    b.http_send(req, "t.l");
    b.invoke("C.loop", {});
    p.methods.push_back(b.build());
  }
  p.entry_points = {"C.loop"};
  Interpreter interp(&p, basic_env(), fixed_transport("{}"));
  interp.set_request_limit(10);
  EXPECT_THROW(interp.run_all_entries(), InvalidStateError);
}

// --- differential tests against the static analysis --------------------------------

class DifferentialTest : public ::testing::TestWithParam<int> {};

TEST_P(DifferentialTest, ExecutedTrafficMatchesStaticSignatures) {
  const apps::AppSpec spec = apps::make_all_apps()[static_cast<std::size_t>(GetParam())];
  const ir::Program program = apps::compile_app(spec);
  const auto result = analysis::analyze(program);
  apps::OriginServer server(&spec);

  ConcreteEnv env;
  env.values = spec.env_defaults;
  // Exercise the branch-conditional fields too.
  for (const auto& flag : spec.env_flags) env.flags.insert(flag);
  env.flags.insert("has_credit");

  Interpreter interp(&program, env,
                     [&](const http::Request& req) { return server.serve(req); });
  interp.run_all_entries();

  ASSERT_GT(interp.requests().size(), 50u) << spec.name;

  // Soundness: every concretely executed request matches a signature.
  std::set<std::string> covered;
  for (const http::Request& req : interp.requests()) {
    const auto* sig = result.signatures.match_request(req);
    ASSERT_NE(sig, nullptr) << spec.name << ": unmatched " << req.method << " "
                            << req.uri.serialize();
    covered.insert(sig->id);
    // The origin accepts it (no 404/400: the analysis didn't hallucinate).
    const auto resp = server.serve(req);
    EXPECT_NE(resp.status, 404) << req.uri.serialize();
    EXPECT_NE(resp.status, 400) << req.uri.serialize();
  }

  // Completeness: concretely executing every entry point visits every
  // statically extracted signature.
  EXPECT_EQ(covered.size(), result.signatures.size()) << spec.name;
}

std::string app_case_name(const ::testing::TestParamInfo<int>& info) {
  static const char* kNames[] = {"Wish", "Geek", "DoorDash", "PurpleOcean", "Postmates"};
  return kNames[info.param];
}

INSTANTIATE_TEST_SUITE_P(AllApps, DifferentialTest, ::testing::Range(0, 5), app_case_name);

}  // namespace
}  // namespace appx::ir
