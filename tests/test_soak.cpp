// Soak and invariant tests: long randomized sessions through the full stack,
// checking the bookkeeping identities that must hold regardless of workload.
#include <gtest/gtest.h>

#include <random>
#include <string>

#include "core/cache.hpp"
#include "eval/experiments.hpp"
#include "fuzz/fuzzer.hpp"

namespace appx::eval {
namespace {

TEST(Soak, HourOfFuzzingThroughPrefetchingProxy) {
  const AnalyzedApp app = analyze_app(apps::make_geek());
  TestbedConfig config;
  config.prefetch_enabled = true;
  config.proxy_config = deployment_config(app);
  Testbed bed(&app.spec, &app.analysis.signatures, config);

  fuzz::FuzzParams params;
  params.duration = minutes(60);
  params.seed = 1234;
  fuzz::Fuzzer fuzzer(&bed.client_for("soak"), &bed.sim(), params);
  bool finished = false;
  fuzzer.start([&](const fuzz::FuzzStats&) { finished = true; });
  bed.sim().run();
  ASSERT_TRUE(finished);

  const core::ProxyStats& stats = bed.proxy().stats();
  // Conservation: every client request was either served or forwarded.
  EXPECT_EQ(stats.client_requests, stats.cache_hits + stats.forwarded);
  // Every issued prefetch completed (the simulator drains fully).
  EXPECT_EQ(stats.prefetches_issued, stats.prefetch_responses);
  // The deployment config never prefetches nonce-protected signatures, so no
  // prefetch can fail against the deterministic origin.
  EXPECT_EQ(stats.prefetch_failures, 0u);
  // Substantial activity actually happened.
  EXPECT_GT(stats.client_requests, 1000u);
  EXPECT_GT(stats.cache_hits, 100u);
  EXPECT_GT(stats.prefetches_issued, 100u);
  // Byte accounting is self-consistent.
  EXPECT_GT(stats.bytes_origin_to_proxy, 0);
  EXPECT_GT(stats.bytes_prefetched, 0);
  EXPECT_GT(stats.bytes_served_from_cache, 0);
}

TEST(Soak, ManyUsersSequentiallyShareOneProxy) {
  const AnalyzedApp app = analyze_app(apps::make_doordash());
  trace::TraceParams params;
  params.users = 40;  // beyond the paper's 30
  params.seed = 99;
  const auto traces = trace::generate_traces(app.spec, params);

  TestbedConfig config;
  config.prefetch_enabled = true;
  config.proxy_config = deployment_config(app);
  const auto result = run_trace_experiment(app, config, traces);

  EXPECT_EQ(result.skipped_events, 0u);
  EXPECT_GT(result.interactions, 400u);
  EXPECT_EQ(result.proxy_stats.client_requests,
            result.proxy_stats.cache_hits + result.proxy_stats.forwarded);
  // Every user got their own context: at least `users` learning engines.
  // (Indirectly: hits happened for many users -> overall hit rate healthy.)
  EXPECT_GT(result.proxy_stats.cache_hits, result.proxy_stats.client_requests / 4);
}

TEST(Soak, DeterministicAcrossRuns) {
  // The whole stack is deterministic: identical configs and seeds produce
  // identical stats, byte counts and latencies.
  const AnalyzedApp app = analyze_app(apps::make_purpleocean());
  trace::TraceParams params;
  params.users = 5;
  const auto traces = trace::generate_traces(app.spec, params);

  auto run_once = [&] {
    TestbedConfig config;
    config.prefetch_enabled = true;
    config.proxy_config = deployment_config(app);
    return run_trace_experiment(app, config, traces);
  };
  const auto a = run_once();
  const auto b = run_once();
  EXPECT_EQ(a.origin_bytes, b.origin_bytes);
  EXPECT_EQ(a.proxy_stats.client_requests, b.proxy_stats.client_requests);
  EXPECT_EQ(a.proxy_stats.cache_hits, b.proxy_stats.cache_hits);
  EXPECT_EQ(a.proxy_stats.prefetches_issued, b.proxy_stats.prefetches_issued);
  ASSERT_EQ(a.main_latency_ms.count(), b.main_latency_ms.count());
  EXPECT_DOUBLE_EQ(a.main_latency_ms.median(), b.main_latency_ms.median());
}

TEST(Soak, CacheStaysWithinBoundsUnderMixedChurn) {
  // 10k mixed puts — overwrites, varied body sizes, a third with short TTLs,
  // interleaved lookups and sweeps — against tight limits. The caps must hold
  // at every single step and both eviction causes must fire.
  const core::PrefetchCache::Limits limits{128, kilobytes(256)};
  core::PrefetchCache cache(limits);
  std::mt19937_64 rng(20260805);
  SimTime now = 0;
  for (int i = 0; i < 10000; ++i) {
    now += milliseconds(5);
    core::PrefetchCache::Entry entry;
    http::Response resp;
    resp.body = std::string(100 + rng() % 7900, 'x');
    entry.set_response(std::move(resp));
    entry.fetched_at = now;
    if (rng() % 3 == 0) entry.expires_at = now + milliseconds(50 + rng() % 500);
    cache.put("key-" + std::to_string(rng() % 400), std::move(entry), now);

    ASSERT_LE(cache.size(), limits.max_entries);
    ASSERT_LE(cache.bytes(), limits.max_bytes);

    if (i % 7 == 0) cache.get("key-" + std::to_string(rng() % 400), now);
    if (i % 1000 == 0) cache.sweep(now);
  }
  EXPECT_EQ(cache.entries_inserted(), 10000u);
  EXPECT_GT(cache.evicted_lru(), 0u);
  EXPECT_GT(cache.evicted_expired(), 0u);
}

TEST(Soak, InjectedPrefetchDropsBalanceAndDoNotStall) {
  const AnalyzedApp app = analyze_app(apps::make_geek());
  TestbedConfig config;
  config.prefetch_enabled = true;
  config.proxy_config = deployment_config(app);
  config.drop_every_nth_prefetch = 3;  // every third issued job vanishes
  Testbed bed(&app.spec, &app.analysis.signatures, config);

  fuzz::FuzzParams params;
  params.duration = minutes(20);
  params.seed = 77;
  fuzz::Fuzzer fuzzer(&bed.client_for("droppy"), &bed.sim(), params);
  bool finished = false;
  fuzzer.start([&](const fuzz::FuzzStats&) { finished = true; });
  bed.sim().run();
  ASSERT_TRUE(finished);

  const core::ProxyStats& stats = bed.proxy().stats();
  EXPECT_GT(bed.prefetches_dropped(), 0u);
  EXPECT_EQ(stats.prefetches_dropped, bed.prefetches_dropped());
  // Every issued job resolved exactly once: completed or dropped.
  EXPECT_EQ(stats.prefetches_issued, stats.prefetch_responses + stats.prefetches_dropped);
  // Dropped jobs release their window slots, so prefetching keeps making
  // progress instead of starving behind leaked slots.
  EXPECT_GT(stats.prefetch_responses, 100u);
  EXPECT_GT(stats.cache_hits, 0u);
  EXPECT_EQ(stats.client_requests, stats.cache_hits + stats.forwarded);
}

}  // namespace
}  // namespace appx::eval
