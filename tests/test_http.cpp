// Unit tests for the HTTP substrate: URIs, headers, form bodies, messages.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <string_view>

#include "http/message.hpp"
#include "http/uri.hpp"
#include "http/view.hpp"
#include "util/arena.hpp"
#include "util/error.hpp"

namespace appx::http {
namespace {

// --- Uri -----------------------------------------------------------------------

TEST(Uri, ParseAbsolute) {
  const Uri u = Uri::parse("https://wish.com/api/get-feed?offset=0&count=30");
  EXPECT_EQ(u.scheme, "https");
  EXPECT_EQ(u.host, "wish.com");
  EXPECT_EQ(u.path, "/api/get-feed");
  ASSERT_EQ(u.query.size(), 2u);
  EXPECT_EQ(u.query[0].first, "offset");
  EXPECT_EQ(u.query[0].second, "0");
  EXPECT_EQ(u.query_param("count").value(), "30");
}

TEST(Uri, ParseWithPort) {
  const Uri u = Uri::parse("http://localhost:8080/x");
  EXPECT_EQ(u.port, 8080);
  EXPECT_EQ(u.host_port(), "localhost:8080");
  EXPECT_EQ(u.effective_port(), 8080);
}

TEST(Uri, DefaultPorts) {
  EXPECT_EQ(Uri::parse("https://a.com/").effective_port(), 443);
  EXPECT_EQ(Uri::parse("http://a.com/").effective_port(), 80);
  // Explicit default port collapses in host_port().
  EXPECT_EQ(Uri::parse("https://a.com:443/").host_port(), "a.com");
}

TEST(Uri, ParseOriginForm) {
  const Uri u = Uri::parse("/product/get?cid=0c99f");
  EXPECT_TRUE(u.host.empty());
  EXPECT_EQ(u.path, "/product/get");
  EXPECT_EQ(u.query_param("cid").value(), "0c99f");
}

TEST(Uri, HostOnlyGetsRootPath) {
  const Uri u = Uri::parse("https://a.com");
  EXPECT_EQ(u.path, "/");
}

TEST(Uri, HostIsLowercased) {
  EXPECT_EQ(Uri::parse("https://WISH.com/x").host, "wish.com");
}

TEST(Uri, QueryPercentEncodingRoundTrip) {
  Uri u = Uri::parse("/search");
  u.add_query_param("q", "red dress & more");
  const Uri back = Uri::parse(u.serialize());
  EXPECT_EQ(back.query_param("q").value(), "red dress & more");
}

TEST(Uri, SerializeRoundTrip) {
  const std::string text = "https://a.com/p/1?x=1&y=2";
  EXPECT_EQ(Uri::parse(text).serialize(), text);
}

TEST(Uri, SetQueryParamReplacesFirst) {
  Uri u = Uri::parse("/x?a=1&b=2");
  u.set_query_param("a", "9");
  EXPECT_EQ(u.query_param("a").value(), "9");
  u.set_query_param("c", "3");
  EXPECT_EQ(u.query.size(), 3u);
  u.remove_query_param("b");
  EXPECT_FALSE(u.query_param("b").has_value());
}

TEST(Uri, QueryKeyWithoutValue) {
  const Uri u = Uri::parse("/x?flag&k=v");
  EXPECT_EQ(u.query_param("flag").value(), "");
}

TEST(Uri, ParseErrors) {
  EXPECT_THROW(Uri::parse("https://a.com:badport/"), ParseError);
  EXPECT_THROW(Uri::parse("https:///nopath"), ParseError);
  EXPECT_THROW(Uri::parse("relative/path"), ParseError);
}

TEST(Uri, EqualityIgnoresImplicitPort) {
  EXPECT_EQ(Uri::parse("https://a.com/x"), Uri::parse("https://a.com:443/x"));
  EXPECT_FALSE(Uri::parse("https://a.com/x") == Uri::parse("https://a.com/y"));
}

// --- Headers -----------------------------------------------------------------------

TEST(Headers, CaseInsensitiveAccess) {
  Headers h;
  h.set("Content-Type", "application/json");
  EXPECT_EQ(h.get("content-type").value(), "application/json");
  EXPECT_TRUE(h.has("CONTENT-TYPE"));
}

TEST(Headers, SetReplacesAddAppends) {
  Headers h;
  h.set("X-K", "1");
  h.set("x-k", "2");
  EXPECT_EQ(h.size(), 1u);
  EXPECT_EQ(h.get("X-K").value(), "2");
  h.add("X-K", "3");
  EXPECT_EQ(h.size(), 2u);
  EXPECT_EQ(h.get_all("X-K").size(), 2u);
}

TEST(Headers, RemoveDropsAllOccurrences) {
  Headers h;
  h.add("A", "1");
  h.add("a", "2");
  h.add("B", "3");
  h.remove("A");
  EXPECT_EQ(h.size(), 1u);
  EXPECT_TRUE(h.has("B"));
}

// --- form bodies ----------------------------------------------------------------------

TEST(Form, ParsePreservesOrderAndDuplicates) {
  const auto fields = parse_form("cid=b4f9&_cap%5B%5D=2&_cap%5B%5D=4");
  ASSERT_EQ(fields.size(), 3u);
  EXPECT_EQ(fields[0].first, "cid");
  EXPECT_EQ(fields[1].first, "_cap[]");
  EXPECT_EQ(fields[1].second, "2");
  EXPECT_EQ(fields[2].second, "4");
}

TEST(Form, SerializeRoundTrip) {
  const FormFields fields{{"a b", "c&d"}, {"k", ""}, {"k", "2"}};
  EXPECT_EQ(parse_form(serialize_form(fields)), fields);
}

TEST(Form, EmptyBody) { EXPECT_TRUE(parse_form("").empty()); }

// --- Request ---------------------------------------------------------------------------

TEST(Request, SerializeParseRoundTrip) {
  Request req;
  req.method = "POST";
  req.uri = Uri::parse("https://wish.com/product/get");
  req.headers.set("User-Agent", "Mozilla/5.0");
  req.headers.set("Cookie", "e8d5");
  req.set_form_fields({{"cid", "556e"}, {"_client", "android"}});

  const Request back = Request::parse(req.serialize());
  EXPECT_EQ(back.method, "POST");
  EXPECT_EQ(back.uri.host, "wish.com");
  EXPECT_EQ(back.uri.path, "/product/get");
  EXPECT_EQ(back.headers.get("cookie").value(), "e8d5");
  const auto fields = back.form_fields();
  ASSERT_EQ(fields.size(), 2u);
  EXPECT_EQ(fields[0].second, "556e");
}

TEST(Request, ParseSetsHostFromHeader) {
  const Request req = Request::parse("GET /x?a=1 HTTP/1.1\r\nHost: api.geek.com\r\n\r\n");
  EXPECT_EQ(req.uri.host, "api.geek.com");
  EXPECT_EQ(req.uri.query_param("a").value(), "1");
}

TEST(Request, ParseHostWithPort) {
  const Request req = Request::parse("GET / HTTP/1.1\r\nHost: a.com:8443\r\n\r\n");
  EXPECT_EQ(req.uri.host, "a.com");
  EXPECT_EQ(req.uri.port, 8443);
}

TEST(Request, ParseErrors) {
  EXPECT_THROW(Request::parse("GARBAGE"), ParseError);
  EXPECT_THROW(Request::parse("GET /x\r\n\r\n"), ParseError);           // no version
  EXPECT_THROW(Request::parse("GET /x NOTHTTP\r\n\r\n"), ParseError);   // bad version
  EXPECT_THROW(Request::parse("GET /x HTTP/1.1\r\nbad\r\n\r\n"), ParseError);
}

TEST(Request, WireSizePositive) {
  Request req;
  req.uri = Uri::parse("https://a.com/");
  EXPECT_GT(req.wire_size(), 0);
}

TEST(Request, CacheKeyHeaderOrderInsensitive) {
  Request a;
  a.uri = Uri::parse("https://a.com/x");
  a.headers.add("K1", "v1");
  a.headers.add("K2", "v2");
  Request b = a;
  b.headers = Headers{};
  b.headers.add("K2", "v2");
  b.headers.add("k1", "v1");
  EXPECT_EQ(a.cache_key(), b.cache_key());
}

TEST(Request, CacheKeyIgnoresConfiguredHeaders) {
  Request a;
  a.uri = Uri::parse("https://a.com/x");
  Request b = a;
  b.headers.add("X-Appx-Prefetch", "1");
  EXPECT_NE(a.cache_key(), b.cache_key());
  EXPECT_EQ(a.cache_key({"X-Appx-Prefetch"}), b.cache_key({"X-Appx-Prefetch"}));
}

TEST(Request, CacheKeySensitiveToEverythingElse) {
  Request base;
  base.method = "POST";
  base.uri = Uri::parse("https://a.com/x?q=1");
  base.body = "k=v";

  Request diff_method = base;
  diff_method.method = "GET";
  EXPECT_NE(base.cache_key(), diff_method.cache_key());

  Request diff_query = base;
  diff_query.uri.set_query_param("q", "2");
  EXPECT_NE(base.cache_key(), diff_query.cache_key());

  Request diff_body = base;
  diff_body.body = "k=w";
  EXPECT_NE(base.cache_key(), diff_body.cache_key());

  Request diff_host = base;
  diff_host.uri.host = "b.com";
  EXPECT_NE(base.cache_key(), diff_host.cache_key());
}

// --- Response ------------------------------------------------------------------------

TEST(Response, SerializeParseRoundTrip) {
  Response resp;
  resp.status = 200;
  resp.reason = "OK";
  resp.headers.set("Set-Cookie", "bsid=c38e");
  resp.body = R"({"data":[1,2]})";

  const Response back = Response::parse(resp.serialize());
  EXPECT_EQ(back.status, 200);
  EXPECT_TRUE(back.ok());
  EXPECT_EQ(back.headers.get("set-cookie").value(), "bsid=c38e");
  EXPECT_EQ(back.body, resp.body);
}

TEST(Response, OpaquePayloadRoundTrip) {
  Response resp;
  resp.opaque_payload = kilobytes(315);
  const Response back = Response::parse(resp.serialize());
  EXPECT_EQ(back.opaque_payload, kilobytes(315));
  // Wire size charges the opaque bytes.
  EXPECT_GT(resp.wire_size(), kilobytes(315));
}

TEST(Response, ErrorStatusNotOk) {
  Response resp;
  resp.status = 404;
  resp.reason = "Not Found";
  EXPECT_FALSE(resp.ok());
  const Response back = Response::parse(resp.serialize());
  EXPECT_EQ(back.status, 404);
  EXPECT_EQ(back.reason, "Not Found");
}

TEST(Response, ParseErrors) {
  EXPECT_THROW(Response::parse("HTTP/1.1\r\n\r\n"), ParseError);
  EXPECT_THROW(Response::parse("HTTP/1.1 999999 X\r\n\r\n"), ParseError);
  EXPECT_THROW(Response::parse("NOTHTTP 200 OK\r\n\r\n"), ParseError);
}

TEST(Response, ReasonPhrases) {
  EXPECT_EQ(reason_phrase(200), "OK");
  EXPECT_EQ(reason_phrase(404), "Not Found");
  EXPECT_EQ(reason_phrase(503), "Service Unavailable");
  EXPECT_EQ(reason_phrase(299), "Unknown");
}

// --- BodySlab ----------------------------------------------------------------

TEST(BodySlab, CopySharesBytesInsteadOfDuplicating) {
  BodySlab a = std::string("payload bytes");
  BodySlab b = a;
  EXPECT_EQ(a.data(), b.data());  // same storage, refcount bump only
  EXPECT_EQ(b, "payload bytes");
}

TEST(BodySlab, KeepsBytesAliveAfterEveryOtherOwnerReleases) {
  BodySlab survivor;
  {
    Response resp;
    resp.body = std::string("cached response body");
    const Response copy = resp;  // cache-style copy: shares the slab
    survivor = copy.body;
  }  // both Responses destroyed
  EXPECT_EQ(survivor, "cached response body");
}

TEST(BodySlab, StaticBytesNeitherAllocateNorOwn) {
  static constexpr std::string_view kCanned = R"({"error":"canned"})";
  const BodySlab slab = BodySlab::static_bytes(kCanned);
  EXPECT_EQ(slab.data(), kCanned.data());  // a view, not a copy
  EXPECT_EQ(slab.size(), kCanned.size());
}

TEST(BodySlab, AliasKeepsExternalOwnerAlive) {
  auto owner = std::make_shared<std::string>("aliased body");
  BodySlab slab = BodySlab::alias(*owner, owner);
  std::weak_ptr<std::string> watch = owner;
  owner.reset();
  EXPECT_FALSE(watch.expired());  // slab holds the storage
  EXPECT_EQ(slab, "aliased body");
  slab = BodySlab();
  EXPECT_TRUE(watch.expired());
}

// --- RequestView / materialize ------------------------------------------------

constexpr std::string_view kWireRequest =
    "POST /api/get-feed?offset=0&count=30 HTTP/1.1\r\n"
    "Host: api.wish.example:8443\r\n"
    "Cookie: session=abc\r\n"
    "Content-Length: 11\r\n"
    "\r\n"
    "offset=0&c=1";

TEST(RequestView, FieldsAreViewsIntoTheWireBuffer) {
  const std::string wire(kWireRequest);
  util::Arena arena;
  const RequestView view = parse_request_view(wire, arena);
  EXPECT_EQ(view.method, "POST");
  EXPECT_EQ(view.target, "/api/get-feed?offset=0&count=30");
  EXPECT_EQ(view.path(), "/api/get-feed");
  EXPECT_EQ(view.version, "HTTP/1.1");
  ASSERT_EQ(view.header_count, 3u);
  EXPECT_EQ(view.header("cookie").value(), "session=abc");
  EXPECT_FALSE(view.header("X-Missing").has_value());
  // Zero-copy: every view points inside the wire buffer.
  const char* lo = wire.data();
  const char* hi = wire.data() + wire.size();
  for (std::string_view sv : {view.method, view.target, view.body}) {
    EXPECT_GE(sv.data(), lo);
    EXPECT_LE(sv.data() + sv.size(), hi);
  }
}

TEST(RequestView, MaterializeMatchesRequestParseExactly) {
  const std::string wire(kWireRequest);
  util::Arena arena;
  Request materialized;
  materialize(parse_request_view(wire, arena), materialized);

  const Request parsed = Request::parse(wire);
  EXPECT_EQ(materialized.method, parsed.method);
  EXPECT_EQ(materialized.uri, parsed.uri);
  EXPECT_EQ(materialized.uri.host, "api.wish.example");  // Host promoted, lowered
  EXPECT_EQ(materialized.uri.port, 8443);
  EXPECT_TRUE(materialized.headers == parsed.headers);
  EXPECT_FALSE(materialized.headers.has("Host"));            // promoted away
  EXPECT_FALSE(materialized.headers.has("Content-Length"));  // re-derived
  EXPECT_EQ(materialized.body, parsed.body);
  EXPECT_EQ(materialized.serialize(), parsed.serialize());
  EXPECT_EQ(materialized.cache_key(), parsed.cache_key());
}

TEST(RequestView, MaterializeIntoWarmScratchReplacesEveryField) {
  util::Arena arena;
  Request scratch;
  const std::string first(kWireRequest);
  materialize(parse_request_view(first, arena), scratch);

  // A different request into the same scratch: no stale headers, body or
  // query parameters may survive from the first materialization.
  arena.reset();
  const std::string second =
      "GET /product/42 HTTP/1.1\r\nHost: img.wish.example\r\nAccept: */*\r\n\r\n";
  materialize(parse_request_view(second, arena), scratch);
  const Request fresh = Request::parse(second);
  EXPECT_EQ(scratch.serialize(), fresh.serialize()) << "scratch reuse leaked state";
  EXPECT_EQ(scratch.cache_key(), fresh.cache_key());
  EXPECT_TRUE(scratch.body.empty());
}

TEST(RequestView, RejectsTheSameMalformedInputsAsRequestParse) {
  util::Arena arena;
  for (const char* raw :
       {"GET /x\r\n\r\n",                       // missing version
        "GET  /x HTTP/1.1\r\n\r\n",             // double space
        "GET /x SMTP/1.0\r\n\r\n",              // bad version
        "GET /x HTTP/1.1\r\nno colon\r\n\r\n",  // malformed header
        "\r\n\r\n"}) {                          // empty start line
    const std::string wire(raw);
    EXPECT_THROW(parse_request_view(wire, arena), ParseError) << wire;
    EXPECT_THROW(Request::parse(wire), ParseError) << wire;
  }
}

}  // namespace
}  // namespace appx::http
