// Tests for user-study trace generation, serialisation and replay (§6).
#include <gtest/gtest.h>

#include <set>

#include "apps/catalog.hpp"
#include "apps/server.hpp"
#include "trace/trace.hpp"
#include "util/error.hpp"

namespace appx::trace {
namespace {

TEST(TraceGeneration, ProducesOneSessionPerUser) {
  const apps::AppSpec app = apps::make_wish();
  TraceParams params;
  params.users = 30;
  const auto traces = generate_traces(app, params);
  ASSERT_EQ(traces.size(), 30u);
  std::set<std::string> ids;
  for (const UserTrace& t : traces) {
    ids.insert(t.user_id);
    ASSERT_FALSE(t.events.empty());
    EXPECT_EQ(t.events.front().interaction, apps::kLaunchInteraction);
    EXPECT_EQ(t.events.front().at, 0);
  }
  EXPECT_EQ(ids.size(), 30u);
}

TEST(TraceGeneration, EventsWithinSessionLengthAndOrdered) {
  const apps::AppSpec app = apps::make_wish();
  TraceParams params;
  params.session_length = minutes(3);
  for (const UserTrace& t : generate_traces(app, params)) {
    Duration prev = -1;
    for (const TraceEvent& e : t.events) {
      EXPECT_GT(e.at, prev);
      prev = e.at;
      EXPECT_LT(e.at, params.session_length);
    }
  }
}

TEST(TraceGeneration, RespectsInteractionPrerequisites) {
  // merchant_page requires a detail view; item_detail requires launch.
  const apps::AppSpec app = apps::make_wish();
  for (const UserTrace& t : generate_traces(app, TraceParams{})) {
    bool seen_main = false;
    for (const TraceEvent& e : t.events) {
      if (e.interaction == apps::kMainInteraction) seen_main = true;
      if (e.interaction == apps::kMerchantInteraction) {
        EXPECT_TRUE(seen_main) << "merchant page before any item detail in " << t.user_id;
      }
    }
  }
}

TEST(TraceGeneration, DeterministicForSeed) {
  const apps::AppSpec app = apps::make_wish();
  TraceParams params;
  params.seed = 5;
  const auto a = generate_traces(app, params);
  const auto b = generate_traces(app, params);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    ASSERT_EQ(a[i].events.size(), b[i].events.size());
    for (std::size_t j = 0; j < a[i].events.size(); ++j) {
      EXPECT_EQ(a[i].events[j].at, b[i].events[j].at);
      EXPECT_EQ(a[i].events[j].interaction, b[i].events[j].interaction);
      EXPECT_EQ(a[i].events[j].selection, b[i].events[j].selection);
    }
  }
  params.seed = 6;
  const auto c = generate_traces(app, params);
  bool any_diff = false;
  for (std::size_t i = 0; i < a.size() && !any_diff; ++i) {
    any_diff = a[i].events.size() != c[i].events.size();
  }
  EXPECT_TRUE(any_diff);
}

TEST(TraceGeneration, SelectionsFavorTopOfList) {
  const apps::AppSpec app = apps::make_wish();
  TraceParams params;
  params.users = 60;
  std::size_t zero = 0, total = 0;
  for (const UserTrace& t : generate_traces(app, params)) {
    for (const TraceEvent& e : t.events) {
      if (e.interaction != apps::kMainInteraction) continue;
      ++total;
      if (e.selection == 0) ++zero;
      EXPECT_LT(e.selection, 30u);
    }
  }
  ASSERT_GT(total, 100u);
  EXPECT_GT(static_cast<double>(zero) / static_cast<double>(total), 0.15);
}

TEST(TraceSerialization, RoundTrip) {
  const apps::AppSpec app = apps::make_wish();
  const auto traces = generate_traces(app, TraceParams{});
  const auto blob = serialize_traces(traces);
  const auto back = deserialize_traces(blob);
  ASSERT_EQ(back.size(), traces.size());
  for (std::size_t i = 0; i < traces.size(); ++i) {
    EXPECT_EQ(back[i].user_id, traces[i].user_id);
    ASSERT_EQ(back[i].events.size(), traces[i].events.size());
    for (std::size_t j = 0; j < traces[i].events.size(); ++j) {
      EXPECT_EQ(back[i].events[j].at, traces[i].events[j].at);
      EXPECT_EQ(back[i].events[j].interaction, traces[i].events[j].interaction);
      EXPECT_EQ(back[i].events[j].selection, traces[i].events[j].selection);
    }
  }
}

TEST(TraceSerialization, RejectsGarbage) {
  EXPECT_THROW(deserialize_traces({1, 2, 3, 4}), ParseError);
}

class ReplayTest : public ::testing::Test {
 protected:
  ReplayTest() : app_(apps::make_wish()), server_(&app_) {}

  apps::AppClient make_client() {
    return apps::AppClient(&app_, apps::ClientEnv::for_user(app_, "u"), &sim_,
                           [this](http::Request req, std::function<void(http::Response)> cb) {
                             const auto resp = server_.serve(req);
                             sim_.schedule(milliseconds(15), [cb, resp] { cb(resp); });
                           });
  }

  sim::Simulator sim_;
  apps::AppSpec app_;
  apps::OriginServer server_;
};

TEST_F(ReplayTest, ReplaysAllRunnableEvents) {
  TraceParams params;
  params.users = 1;
  const auto traces = generate_traces(app_, params);
  auto client = make_client();
  TraceReplayer replayer(&client, &sim_);
  bool done = false;
  replayer.replay(traces[0], [&] { done = true; });
  sim_.run();
  EXPECT_TRUE(done);
  EXPECT_EQ(replayer.results().size() + replayer.skipped(), traces[0].events.size());
  EXPECT_EQ(replayer.skipped(), 0u) << "generated traces must be fully replayable";
  for (const apps::InteractionResult& r : replayer.results()) EXPECT_TRUE(r.ok);
}

TEST_F(ReplayTest, HonoursThinkTimes) {
  UserTrace t;
  t.user_id = "u";
  t.events.push_back({0, apps::kLaunchInteraction, 0});
  t.events.push_back({seconds(30), apps::kMainInteraction, 0});
  auto client = make_client();
  TraceReplayer replayer(&client, &sim_);
  replayer.replay(t);
  sim_.run();
  ASSERT_EQ(replayer.results().size(), 2u);
  // The whole replay spans at least the 30 s think-time offset.
  EXPECT_GE(sim_.now(), seconds(30));
}

TEST_F(ReplayTest, SkipsEventsWithUnmetDependencies) {
  UserTrace t;
  t.user_id = "u";
  // Main interaction without a prior launch: dependencies unavailable.
  t.events.push_back({0, apps::kMainInteraction, 0});
  auto client = make_client();
  TraceReplayer replayer(&client, &sim_);
  replayer.replay(t);
  sim_.run();
  EXPECT_EQ(replayer.results().size(), 0u);
  EXPECT_EQ(replayer.skipped(), 1u);
}

TEST(TraceReplayer, RejectsNullArguments) {
  sim::Simulator sim;
  EXPECT_THROW(TraceReplayer(nullptr, &sim), InvalidArgumentError);
}

}  // namespace
}  // namespace appx::trace
