// Allocation budget for the zero-copy data plane (DESIGN.md §5h).
//
// This binary links appx::alloc_hook, whose replacement operator new/delete
// bumps thread-local counters (obs/alloc.hpp), so it can assert — not just
// report — that the steady-state hit path allocates within budget and never
// copies body bytes. The budget constant below is the same number the CI
// bench_alloc smoke gate enforces (bench/alloc_budget.json); change both
// together, with a reason.
//
// Under ASan/TSan the hook compiles out (the sanitizer owns the allocator),
// alloc_counting_active() is false, and these tests skip.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "core/cache.hpp"
#include "http/message.hpp"
#include "http/view.hpp"
#include "net/http_io.hpp"
#include "obs/alloc.hpp"
#include "util/arena.hpp"

namespace appx {
namespace {

// Heap allocations permitted per steady-state hit, end to end across the
// component data plane (parse → view → materialize → cache key → cache get →
// head render). ISSUE target is 0; 2 is the enforced ceiling.
constexpr double kHitAllocBudget = 2.0;

std::string wire_request() {
  http::Request req;
  req.method = "POST";
  req.uri = http::Uri::parse("https://api.wish.example/product/get");
  req.uri.add_query_param("offset", "0");
  req.uri.add_query_param("count", "30");
  req.headers.set("Cookie", "session=abcdef0123456789");
  req.headers.set("User-Agent", "Mozilla/5.0 (Linux; Android 9)");
  req.headers.set("X-Appx-User", "demo-user");
  req.set_form_fields({{"_client", "android"}, {"_ver", "4.13.0"}, {"pid", "item-17"}});
  return req.serialize();
}

// One steady-state hit pass over warm state: exactly what a keep-alive
// connection does per request once every reusable buffer has its capacity.
struct HitPlane {
  net::HttpParser parser;
  util::Arena arena;
  http::Request scratch;
  std::string key;
  std::string head;
  core::PrefetchCache cache;
  std::vector<std::string> ignored;
  std::string wire = wire_request();

  HitPlane() {
    http::Response cached;
    cached.status = 200;
    cached.headers.set("Content-Type", "application/json");
    cached.body = std::string(4096, 'j');
    core::PrefetchCache::Entry entry;
    entry.set_response(std::move(cached));
    // Key from a first materialization (cold; warms the scratch state too).
    util::Arena seed_arena;
    http::materialize(http::parse_request_view(wire, seed_arena), scratch);
    cache.put(scratch.cache_key(ignored), std::move(entry));
  }

  // Returns the served slab so the caller can check pointer identity; the
  // slab riding out of the function is the out-queue's refcount bump.
  http::BodySlab pass() {
    parser.append(wire.data(), wire.size());
    const auto message = parser.next_message();
    EXPECT_TRUE(message.has_value());
    parser.pin();
    arena.reset();
    const http::RequestView view = http::parse_request_view(*message, arena);
    http::materialize(view, scratch);
    scratch.cache_key_into(key, ignored);
    const std::shared_ptr<const http::Response> response = cache.get(key, 0);
    EXPECT_NE(response, nullptr);
    head.clear();
    response->serialize_head_into(head, "X-Appx-Cache: hit");
    http::BodySlab slab = response->body;
    parser.unpin();
    return slab;
  }
};

TEST(AllocBudget, SteadyStateHitPathStaysWithinBudget) {
  if (!obs::alloc_counting_active()) {
    GTEST_SKIP() << "allocation hook not active in this build";
  }
  HitPlane plane;
  for (int i = 0; i < 16; ++i) plane.pass();  // warm every capacity

  constexpr int kIters = 256;
  const obs::AllocCounters before = obs::thread_alloc_counters();
  for (int i = 0; i < kIters; ++i) plane.pass();
  const obs::AllocCounters after = obs::thread_alloc_counters();

  const double per_request =
      static_cast<double>(after.allocations - before.allocations) / kIters;
  EXPECT_LE(per_request, kHitAllocBudget)
      << (after.allocations - before.allocations) << " allocations over " << kIters
      << " warm hits (" << (after.bytes - before.bytes) / kIters << " bytes/request)";
}

TEST(AllocBudget, HitBodyIsServedByReferenceNotByCopy) {
  // Pointer identity, not content equality: the bytes handed to the write
  // queue ARE the cached bytes. Holds regardless of the hook, so no skip.
  HitPlane plane;
  const http::BodySlab served = plane.pass();
  const std::shared_ptr<const http::Response> stored = plane.cache.get(plane.key, 0);
  ASSERT_NE(stored, nullptr);
  EXPECT_EQ(served.data(), stored->body.data());
  EXPECT_EQ(served.size(), stored->body.size());
}

TEST(AllocBudget, WarmArenaAbsorbsRepeatedRequestsWithoutGrowth) {
  if (!obs::alloc_counting_active()) {
    GTEST_SKIP() << "allocation hook not active in this build";
  }
  const std::string wire = wire_request();
  util::Arena arena;
  for (int i = 0; i < 4; ++i) {  // warm: first pass sizes the block list
    arena.reset();
    http::parse_request_view(wire, arena);
  }
  const obs::AllocCounters before = obs::thread_alloc_counters();
  for (int i = 0; i < 64; ++i) {
    arena.reset();
    http::parse_request_view(wire, arena);
  }
  const obs::AllocCounters after = obs::thread_alloc_counters();
  EXPECT_EQ(after.allocations, before.allocations)
      << "warm arena went back to the heap";
}

}  // namespace
}  // namespace appx
