// Tests for the SAPK disassembler.
#include <algorithm>
#include <gtest/gtest.h>

#include "apps/catalog.hpp"
#include "apps/compiler.hpp"
#include "ir/disasm.hpp"

namespace appx::ir {
namespace {

TEST(Disasm, InstructionForms) {
  EXPECT_EQ(disassemble(Instruction{OpCode::kConst, 3, kNoReg, kNoReg, "v", "", {}}),
            "const  r3 <- 'v'");
  EXPECT_EQ(disassemble(Instruction{OpCode::kConcat, 5, 1, 2, "", "", {}}),
            "concat  r5 <- r1 r2");
  EXPECT_EQ(disassemble(Instruction{OpCode::kHttpQuery, kNoReg, 4, 7, "offset", "", {}}),
            "http-query r4 r7 'offset'");
  EXPECT_EQ(disassemble(Instruction{OpCode::kInvoke, 9, kNoReg, kNoReg, "C.m", "", {1, 2}}),
            "invoke  r9 <- 'C.m' (r1, r2)");
  EXPECT_EQ(disassemble(Instruction{OpCode::kHttpSend, 2, 1, kNoReg, "label", "json", {}}),
            "http-send  r2 <- r1 'label' 'json'");
}

TEST(Disasm, EscapesQuotes) {
  EXPECT_EQ(disassemble(Instruction{OpCode::kConst, 0, kNoReg, kNoReg, "a'b\\c", "", {}}),
            "const  r0 <- 'a\\'b\\\\c'");
}

TEST(Disasm, MethodListingHasHeaderAndNumbering) {
  MethodBuilder b("C.m", 1);
  const Reg v = b.const_str("x");
  b.if_env("flag");
  b.http_new();
  b.end_if();
  b.ret(v);
  const std::string text = disassemble(b.build());
  EXPECT_NE(text.find("method C.m (params=1, regs="), std::string::npos);
  EXPECT_NE(text.find("   0: const"), std::string::npos);
  EXPECT_NE(text.find("if-env 'flag'"), std::string::npos);
  // The guarded instruction is indented past the if.
  EXPECT_NE(text.find("  http-new"), std::string::npos);
  EXPECT_NE(text.find("return"), std::string::npos);
}

TEST(Disasm, ProgramListingIsComplete) {
  const ir::Program program = apps::compile_app(apps::make_wish());
  const std::string text = disassemble(program);
  EXPECT_NE(text.find("sapk com.wish.app"), std::string::npos);
  EXPECT_NE(text.find("entry points:"), std::string::npos);
  // Every method appears.
  for (const Method& method : program.methods) {
    EXPECT_NE(text.find("method " + method.name), std::string::npos) << method.name;
  }
  // Listing is substantial and line-counted roughly like the program.
  const auto lines = static_cast<std::size_t>(std::count(text.begin(), text.end(), '\n'));
  EXPECT_GT(lines, program.instruction_count());
}

TEST(Disasm, StableAcrossSerializationRoundTrip) {
  const ir::Program program = apps::compile_app(apps::make_postmates());
  const ir::Program back = ir::Program::deserialize(program.serialize());
  EXPECT_EQ(disassemble(program), disassemble(back));
}

}  // namespace
}  // namespace appx::ir
