// Tests for the app substrate: specs, the spec->IR compiler, origin servers,
// the client engine, and the end-to-end consistency property that makes the
// reproduction sound: client traffic matches the statically-derived
// signatures byte-for-byte.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "analysis/analyzer.hpp"
#include "apps/catalog.hpp"
#include "apps/client.hpp"
#include "apps/compiler.hpp"
#include "apps/content.hpp"
#include "apps/server.hpp"
#include "util/error.hpp"

namespace appx::apps {
namespace {

// --- spec ------------------------------------------------------------------------

TEST(AppSpec, AllCatalogAppsValidate) {
  for (const AppSpec& app : make_all_apps()) {
    EXPECT_NO_THROW(app.validate()) << app.name;
    EXPECT_FALSE(app.endpoints.empty());
    EXPECT_FALSE(app.interactions.empty());
    EXPECT_NO_THROW(app.interaction(app.main_interaction));
  }
}

TEST(AppSpec, EndpointLookup) {
  const AppSpec app = make_wish();
  EXPECT_EQ(app.endpoint("feed").path, "/api/get-feed");
  EXPECT_EQ(app.find_endpoint("nope"), nullptr);
  EXPECT_THROW(app.endpoint("nope"), NotFoundError);
}

TEST(AppSpec, SuccessorsAndRoots) {
  const AppSpec app = make_wish();
  const auto succ = app.successors_of("feed");
  EXPECT_GT(succ.size(), 3u);  // thumb, detail, related, aux*
  const auto roots = app.roots();
  EXPECT_TRUE(std::any_of(roots.begin(), roots.end(),
                          [](const EndpointSpec* ep) { return ep->label == "feed"; }));
  EXPECT_TRUE(std::none_of(roots.begin(), roots.end(),
                           [](const EndpointSpec* ep) { return ep->label == "detail"; }));
}

TEST(AppSpec, RttPerHost) {
  const AppSpec app = make_wish();
  EXPECT_EQ(app.rtt_for_host("api.wish.example"), milliseconds(165));
  EXPECT_EQ(app.rtt_for_host("img.wish.example"), milliseconds(16));
  EXPECT_EQ(app.rtt_for_host("unknown.example"), app.default_rtt);
}

TEST(AppSpec, ValidationCatchesBadDeps) {
  AppSpec app = make_wish();
  app.endpoints[2].fields.push_back(
      {core::FieldLocation::kBody, "x", ValueSpec::dep("missing", "a.b"), false, ""});
  EXPECT_THROW(app.validate(), InvalidArgumentError);
}

TEST(AppSpec, ValidationCatchesUnproducedPath) {
  AppSpec app = make_wish();
  // detail reads a path feed does not produce.
  for (EndpointSpec& ep : app.endpoints) {
    if (ep.label == "detail") {
      ep.fields.push_back(
          {core::FieldLocation::kBody, "bad", ValueSpec::dep("feed", "data.nope"), false, ""});
    }
  }
  EXPECT_THROW(app.validate(), InvalidArgumentError);
}

TEST(SplitWildcardPath, Cases) {
  std::string prefix, remainder;
  ASSERT_TRUE(split_wildcard_path("data.items[*].id", prefix, remainder));
  EXPECT_EQ(prefix, "data.items");
  EXPECT_EQ(remainder, "id");
  ASSERT_TRUE(split_wildcard_path("a.b[*]", prefix, remainder));
  EXPECT_EQ(prefix, "a.b");
  EXPECT_EQ(remainder, "");
  EXPECT_FALSE(split_wildcard_path("a.b.c", prefix, remainder));
}

// --- content / server ----------------------------------------------------------------

TEST(Content, Deterministic) {
  EXPECT_EQ(derive_value(ProducesSpec::Kind::kId, "feed", "s", 3, 0),
            derive_value(ProducesSpec::Kind::kId, "feed", "s", 3, 0));
  EXPECT_NE(derive_value(ProducesSpec::Kind::kId, "feed", "s", 3, 0),
            derive_value(ProducesSpec::Kind::kId, "feed", "s", 4, 0));
  EXPECT_NE(derive_value(ProducesSpec::Kind::kId, "feed", "s", 3, 0),
            derive_value(ProducesSpec::Kind::kId, "feed", "s", 3, 1));  // epoch churn
}

class ServerTest : public ::testing::Test {
 protected:
  ServerTest() : app_(make_wish()), server_(&app_) {}

  http::Request feed_request() const {
    http::Request req;
    req.method = "POST";
    req.uri = http::Uri::parse("https://api.wish.example/api/get-feed?offset=0&count=30");
    req.headers.set("Cookie", "c");
    req.headers.set("User-Agent", "ua");
    req.set_form_fields({{"_client", "android"}, {"_ver", "4.13.0"}});
    return req;
  }

  AppSpec app_;
  OriginServer server_;
};

TEST_F(ServerTest, FeedResponseHasConfiguredListShape) {
  const auto resp = server_.serve(feed_request());
  ASSERT_TRUE(resp.ok());
  const auto body = json::parse(resp.body);
  const auto ids = json::Path("data.items[*].id").resolve(body);
  EXPECT_EQ(ids.size(), 30u);
  // Deterministic: serving again yields the identical body.
  EXPECT_EQ(server_.serve(feed_request()).body, resp.body);
}

TEST_F(ServerTest, DetailSeededByCid) {
  http::Request req;
  req.method = "POST";
  req.uri = http::Uri::parse("https://api.wish.example/product/get");
  req.set_form_fields({{"cid", "abc123"}});
  const auto resp = server_.serve(req);
  ASSERT_TRUE(resp.ok());
  const auto body = json::parse(resp.body);
  EXPECT_NE(json::Path("data.contest.merchant_name").resolve_first(body), nullptr);

  // Different cid -> different content.
  http::Request req2 = req;
  req2.set_form_fields({{"cid", "zzz999"}});
  EXPECT_NE(server_.serve(req2).body, resp.body);
}

TEST_F(ServerTest, OpaqueEndpointChargesPayload) {
  http::Request req;
  req.uri = http::Uri::parse("https://img.wish.example/photo?pid=x1");
  const auto resp = server_.serve(req);
  ASSERT_TRUE(resp.ok());
  EXPECT_EQ(resp.opaque_payload, kilobytes(315));
  EXPECT_TRUE(resp.body.empty());
}

TEST_F(ServerTest, UnknownEndpointIs404) {
  http::Request req;
  req.uri = http::Uri::parse("https://api.wish.example/nope");
  EXPECT_EQ(server_.serve(req).status, 404);
}

TEST_F(ServerTest, MissingSeedIs400) {
  http::Request req;
  req.method = "POST";
  req.uri = http::Uri::parse("https://api.wish.example/product/get");
  req.set_form_fields({{"other", "x"}});
  EXPECT_EQ(server_.serve(req).status, 400);
}

TEST_F(ServerTest, EpochChangesContent) {
  const auto before = server_.serve(feed_request()).body;
  server_.set_epoch(1);
  EXPECT_NE(server_.serve(feed_request()).body, before);
}

TEST_F(ServerTest, ProcDelayExposed) {
  EXPECT_GT(server_.proc_delay(feed_request()), 0);
  http::Request unknown;
  unknown.uri = http::Uri::parse("https://api.wish.example/nope");
  EXPECT_EQ(server_.proc_delay(unknown), 0);
}

// --- compiler + analysis on catalog apps ------------------------------------------------

TEST(Compiler, WishProgramAnalyzesToTableThreeScale) {
  const AppSpec app = make_wish();
  const auto program = compile_app(app);
  EXPECT_GT(program.instruction_count(), 1000u);
  const auto result = analysis::analyze(program);

  // Table 3, Wish row: 120 signatures / 33 prefetchable / 794 deps / len 12.
  // The generator targets that scale; assert a tolerant band so parameter
  // tweaks don't break the suite (bench_table3 prints exact values).
  EXPECT_NEAR(static_cast<double>(result.signatures.size()), 120.0, 10.0);
  EXPECT_NEAR(static_cast<double>(result.signatures.prefetchable().size()), 33.0, 6.0);
  EXPECT_NEAR(static_cast<double>(result.signatures.edges().size()), 794.0, 80.0);
  EXPECT_EQ(result.signatures.max_chain_length(), 12u);
}

TEST(Compiler, AllAppsCompileAndAnalyze) {
  for (const AppSpec& app : make_all_apps()) {
    const auto program = compile_app(app);
    const auto result = analysis::analyze(program);
    EXPECT_EQ(result.signatures.size(), app.endpoints.size()) << app.name;
    EXPECT_GT(result.signatures.edges().size(), 50u) << app.name;
    EXPECT_GE(result.signatures.max_chain_length(), 4u) << app.name;
  }
}

TEST(Compiler, SignaturesMatchClientTraffic) {
  // The end-to-end soundness property: every request the client engine emits
  // matches exactly one statically-derived signature.
  const AppSpec app = make_wish();
  const auto result = analysis::analyze(compile_app(app));

  sim::Simulator sim;
  OriginServer server(&app);
  std::vector<http::Request> sent;
  AppClient client(&app, ClientEnv::for_user(app, "u1"), &sim,
                   [&](http::Request req, std::function<void(http::Response)> cb) {
                     sent.push_back(req);
                     const auto resp = server.serve(req);
                     sim.schedule(milliseconds(1), [cb, resp] { cb(resp); });
                   });

  bool launch_done = false;
  client.run_interaction(kLaunchInteraction, 0, [&](const InteractionResult& r) {
    launch_done = true;
    EXPECT_TRUE(r.ok);
  });
  sim.run();
  ASSERT_TRUE(launch_done);
  ASSERT_TRUE(client.can_run(kMainInteraction, 2));
  client.run_interaction(kMainInteraction, 2, [](const InteractionResult&) {});
  client.run_interaction(kMerchantInteraction, 0, [](const InteractionResult&) {});
  sim.run();

  ASSERT_GT(sent.size(), 30u);
  for (const http::Request& req : sent) {
    const auto* sig = result.signatures.match_request(req);
    EXPECT_NE(sig, nullptr) << "unmatched request: " << req.uri.serialize();
  }
}

// --- client engine ------------------------------------------------------------------------

class ClientTest : public ::testing::Test {
 protected:
  ClientTest()
      : app_(make_wish()),
        server_(&app_),
        client_(&app_, ClientEnv::for_user(app_, "u1"), &sim_, make_transport()) {}

  AppClient::Transport make_transport() {
    return [this](http::Request req, std::function<void(http::Response)> cb) {
      ++requests_;
      const auto resp = server_.serve(req);
      const Duration delay = milliseconds(10) + server_.proc_delay(req);
      sim_.schedule(delay, [cb, resp] { cb(resp); });
    };
  }

  sim::Simulator sim_;
  AppSpec app_;
  OriginServer server_;
  AppClient client_;
  std::size_t requests_ = 0;
};

TEST_F(ClientTest, LaunchIssuesFeedAndThumbnails) {
  InteractionResult result;
  client_.run_interaction(kLaunchInteraction, 0, [&](const InteractionResult& r) { result = r; });
  sim_.run();
  // boot_config + feed + 30 thumbnails + aux0 + tab0 + tab0_content.
  EXPECT_EQ(result.requests, 35u);
  EXPECT_TRUE(result.ok);
  EXPECT_GT(result.total, 0);
  EXPECT_GT(result.network, 0);
  EXPECT_EQ(result.total, result.network + result.processing);
  // Three waves, each >= 10 ms of transport.
  EXPECT_GE(result.network, milliseconds(30));
}

TEST_F(ClientTest, CannotRunDetailBeforeFeed) {
  EXPECT_FALSE(client_.can_run(kMainInteraction, 0));
  InteractionResult result;
  client_.run_interaction(kMainInteraction, 0, [&](const InteractionResult& r) { result = r; });
  sim_.run();
  EXPECT_FALSE(result.ok);  // dependency unavailable
}

TEST_F(ClientTest, SelectionOutOfRangeRejected) {
  client_.run_interaction(kLaunchInteraction, 0, [](const InteractionResult&) {});
  sim_.run();
  EXPECT_TRUE(client_.can_run(kMainInteraction, 29));
  EXPECT_FALSE(client_.can_run(kMainInteraction, 30));
}

TEST_F(ClientTest, DetailUsesSelectedItemId) {
  client_.run_interaction(kLaunchInteraction, 0, [](const InteractionResult&) {});
  sim_.run();
  const json::Value* feed = client_.last_response("feed");
  ASSERT_NE(feed, nullptr);
  const std::string expected_id =
      json::Path("data.items[5].id").resolve_first(*feed)->as_string();

  const auto req = client_.build_request(app_.endpoint("detail"), 5);
  ASSERT_TRUE(req.has_value());
  const auto fields = req->form_fields();
  const auto cid = std::find_if(fields.begin(), fields.end(),
                                [](const auto& kv) { return kv.first == "cid"; });
  ASSERT_NE(cid, fields.end());
  EXPECT_EQ(cid->second, expected_id);
}

TEST_F(ClientTest, ConditionalFieldFollowsEnvFlag) {
  client_.run_interaction(kLaunchInteraction, 0, [](const InteractionResult&) {});
  sim_.run();
  auto without = client_.build_request(app_.endpoint("detail"), 0);
  ASSERT_TRUE(without.has_value());
  EXPECT_EQ(without->body.find("credit_id"), std::string::npos);

  client_.env().flags.insert("has_credit");
  auto with = client_.build_request(app_.endpoint("detail"), 0);
  ASSERT_TRUE(with.has_value());
  EXPECT_NE(with->body.find("credit_id"), std::string::npos);
}

TEST_F(ClientTest, MerchantChainRunsAfterDetail) {
  client_.run_interaction(kLaunchInteraction, 0, [](const InteractionResult&) {});
  sim_.run();
  EXPECT_FALSE(client_.can_run(kMerchantInteraction, 0));  // needs detail response
  client_.run_interaction(kMainInteraction, 1, [](const InteractionResult&) {});
  sim_.run();
  ASSERT_TRUE(client_.can_run(kMerchantInteraction, 0));
  InteractionResult result;
  client_.run_interaction(kMerchantInteraction, 0,
                          [&](const InteractionResult& r) { result = r; });
  sim_.run();
  EXPECT_TRUE(result.ok);
  // merchant + ratings + image + 4 items + 1 item photo = 8.
  EXPECT_EQ(result.requests, 8u);
}

TEST_F(ClientTest, PerUserEnvDiffers) {
  const auto e1 = ClientEnv::for_user(app_, "alice");
  const auto e2 = ClientEnv::for_user(app_, "bob");
  EXPECT_NE(e1.values.at("cookie"), e2.values.at("cookie"));
  EXPECT_EQ(e1.values.at("api_host"), e2.values.at("api_host"));
}

}  // namespace
}  // namespace appx::apps
