// Property-based tests: randomized cross-checks of the foundational engines.
//
//   * the Thompson-NFA regex engine against a naive backtracking reference
//     interpreter over randomly generated pattern ASTs,
//   * JSON dump/parse round-trips over randomly generated documents,
//   * field-template fill/extract round-trips over random templates.
//
// All randomness is seeded appx::Rng, so failures are reproducible.
#include <gtest/gtest.h>

#include <memory>
#include <set>
#include <string>
#include <vector>

#include "json/json.hpp"
#include "pattern/regex.hpp"
#include "pattern/template.hpp"
#include "util/rng.hpp"

namespace appx {
namespace {

// --- random regex ASTs with a reference matcher -------------------------------------

struct Ast {
  enum class Kind { kChar, kAny, kClass, kConcat, kAlt, kStar, kPlus, kOpt };
  Kind kind = Kind::kChar;
  char ch = 'a';
  std::set<char> cls;
  bool negate = false;
  std::vector<std::unique_ptr<Ast>> children;
};

constexpr const char* kAlphabet = "abc";

std::unique_ptr<Ast> random_ast(Rng& rng, int depth) {
  auto node = std::make_unique<Ast>();
  const int pick = static_cast<int>(rng.uniform_int(0, depth <= 0 ? 2 : 7));
  switch (pick) {
    case 0:
      node->kind = Ast::Kind::kChar;
      node->ch = kAlphabet[rng.index(3)];
      break;
    case 1:
      node->kind = Ast::Kind::kAny;
      break;
    case 2: {
      node->kind = Ast::Kind::kClass;
      node->negate = rng.chance(0.3);
      const std::size_t n = 1 + rng.index(3);
      for (std::size_t i = 0; i < n; ++i) node->cls.insert(kAlphabet[rng.index(3)]);
      break;
    }
    case 3: {
      node->kind = Ast::Kind::kConcat;
      const std::size_t n = 2 + rng.index(2);
      for (std::size_t i = 0; i < n; ++i) node->children.push_back(random_ast(rng, depth - 1));
      break;
    }
    case 4: {
      node->kind = Ast::Kind::kAlt;
      node->children.push_back(random_ast(rng, depth - 1));
      node->children.push_back(random_ast(rng, depth - 1));
      break;
    }
    case 5:
      node->kind = Ast::Kind::kStar;
      node->children.push_back(random_ast(rng, depth - 1));
      break;
    case 6:
      node->kind = Ast::Kind::kPlus;
      node->children.push_back(random_ast(rng, depth - 1));
      break;
    default:
      node->kind = Ast::Kind::kOpt;
      node->children.push_back(random_ast(rng, depth - 1));
      break;
  }
  return node;
}

std::string render(const Ast& node) {
  switch (node.kind) {
    case Ast::Kind::kChar: return std::string(1, node.ch);
    case Ast::Kind::kAny: return ".";
    case Ast::Kind::kClass: {
      std::string out = "[";
      if (node.negate) out += '^';
      for (char c : node.cls) out += c;
      out += ']';
      return out;
    }
    case Ast::Kind::kConcat: {
      std::string out;
      for (const auto& child : node.children) out += render(*child);
      return out;
    }
    case Ast::Kind::kAlt:
      return "(" + render(*node.children[0]) + "|" + render(*node.children[1]) + ")";
    case Ast::Kind::kStar: return "(" + render(*node.children[0]) + ")*";
    case Ast::Kind::kPlus: return "(" + render(*node.children[0]) + ")+";
    case Ast::Kind::kOpt: return "(" + render(*node.children[0]) + ")?";
  }
  return "";
}

// Reference matcher: all end positions reachable by matching `node` at `pos`.
std::set<std::size_t> ref_match(const Ast& node, const std::string& s, std::size_t pos);

std::set<std::size_t> ref_match_seq(const std::vector<std::unique_ptr<Ast>>& seq,
                                    std::size_t index, const std::string& s, std::size_t pos) {
  if (index == seq.size()) return {pos};
  std::set<std::size_t> out;
  for (std::size_t mid : ref_match(*seq[index], s, pos)) {
    const auto rest = ref_match_seq(seq, index + 1, s, mid);
    out.insert(rest.begin(), rest.end());
  }
  return out;
}

std::set<std::size_t> ref_match(const Ast& node, const std::string& s, std::size_t pos) {
  switch (node.kind) {
    case Ast::Kind::kChar:
      if (pos < s.size() && s[pos] == node.ch) return {pos + 1};
      return {};
    case Ast::Kind::kAny:
      if (pos < s.size()) return {pos + 1};
      return {};
    case Ast::Kind::kClass:
      if (pos < s.size() && node.cls.contains(s[pos]) != node.negate) return {pos + 1};
      return {};
    case Ast::Kind::kConcat:
      return ref_match_seq(node.children, 0, s, pos);
    case Ast::Kind::kAlt: {
      auto a = ref_match(*node.children[0], s, pos);
      const auto b = ref_match(*node.children[1], s, pos);
      a.insert(b.begin(), b.end());
      return a;
    }
    case Ast::Kind::kStar:
    case Ast::Kind::kPlus: {
      std::set<std::size_t> out;
      std::set<std::size_t> frontier{pos};
      if (node.kind == Ast::Kind::kStar) out.insert(pos);
      // Iterate to fixpoint; positions only grow or repeat, input is short.
      while (!frontier.empty()) {
        std::set<std::size_t> next;
        for (std::size_t p : frontier) {
          for (std::size_t q : ref_match(*node.children[0], s, p)) {
            if (!out.contains(q)) {
              out.insert(q);
              if (q > p) next.insert(q);  // guard against empty-match loops
            }
          }
        }
        frontier = std::move(next);
      }
      return out;
    }
    case Ast::Kind::kOpt: {
      auto out = ref_match(*node.children[0], s, pos);
      out.insert(pos);
      return out;
    }
  }
  return {};
}

bool ref_full_match(const Ast& node, const std::string& s) {
  return ref_match(node, s, 0).contains(s.size());
}

// Sample a string the AST matches.
std::string sample_match(const Ast& node, Rng& rng) {
  switch (node.kind) {
    case Ast::Kind::kChar: return std::string(1, node.ch);
    case Ast::Kind::kAny: return std::string(1, kAlphabet[rng.index(3)]);
    case Ast::Kind::kClass: {
      if (!node.negate) {
        std::vector<char> members(node.cls.begin(), node.cls.end());
        return std::string(1, members[rng.index(members.size())]);
      }
      for (char c : {'x', 'y', 'z', 'a', 'b', 'c'}) {
        if (!node.cls.contains(c)) return std::string(1, c);
      }
      return "q";
    }
    case Ast::Kind::kConcat: {
      std::string out;
      for (const auto& child : node.children) out += sample_match(*child, rng);
      return out;
    }
    case Ast::Kind::kAlt:
      return sample_match(*node.children[rng.index(2)], rng);
    case Ast::Kind::kStar: {
      std::string out;
      const std::size_t reps = rng.index(3);
      for (std::size_t i = 0; i < reps; ++i) out += sample_match(*node.children[0], rng);
      return out;
    }
    case Ast::Kind::kPlus: {
      std::string out = sample_match(*node.children[0], rng);
      if (rng.chance(0.4)) out += sample_match(*node.children[0], rng);
      return out;
    }
    case Ast::Kind::kOpt:
      return rng.chance(0.5) ? sample_match(*node.children[0], rng) : "";
  }
  return "";
}

std::string random_input(Rng& rng, std::size_t max_len) {
  std::string out;
  const std::size_t n = rng.index(max_len + 1);
  for (std::size_t i = 0; i < n; ++i) out += kAlphabet[rng.index(3)];
  return out;
}

class RegexProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RegexProperty, AgreesWithReferenceMatcher) {
  Rng rng(GetParam());
  for (int round = 0; round < 60; ++round) {
    const auto ast = random_ast(rng, 3);
    const std::string pattern_text = render(*ast);
    const pattern::Regex re(pattern_text);

    // Positive samples drawn from the AST itself.
    for (int s = 0; s < 4; ++s) {
      const std::string sample = sample_match(*ast, rng);
      if (sample.size() > 16) continue;  // keep the reference matcher fast
      EXPECT_TRUE(re.full_match(sample))
          << "pattern '" << pattern_text << "' must match its own sample '" << sample << "'";
    }
    // Random inputs: engine and reference must agree exactly.
    for (int s = 0; s < 12; ++s) {
      const std::string input = random_input(rng, 8);
      EXPECT_EQ(re.full_match(input), ref_full_match(*ast, input))
          << "pattern '" << pattern_text << "' input '" << input << "'";
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RegexProperty,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34, 55, 89));

// The lazy DFA (longest_prefix_match) and the Thompson-NFA simulation
// (longest_prefix_match_nfa) must agree byte-for-byte on every pattern/input
// pair: the DFA is a cache of the NFA's subset construction, nothing more.
// 10 seeds x 25 patterns x 8 inputs >= 2000 randomized pairs.
class RegexDfaProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RegexDfaProperty, DfaAgreesWithNfaSimulation) {
  Rng rng(GetParam());
  for (int round = 0; round < 25; ++round) {
    const auto ast = random_ast(rng, 4);
    const std::string pattern_text = render(*ast);
    const pattern::Regex re(pattern_text);

    for (int s = 0; s < 8; ++s) {
      // Mix AST-derived matches (often long) with uniform noise so both
      // accepting and rejecting DFA paths are exercised, cold and warm.
      const std::string input =
          (s % 2 == 0) ? sample_match(*ast, rng) + random_input(rng, 4) : random_input(rng, 12);
      const std::ptrdiff_t nfa = re.longest_prefix_match_nfa(input);
      const std::ptrdiff_t dfa = re.longest_prefix_match(input);
      ASSERT_EQ(dfa, nfa) << "pattern '" << pattern_text << "' input '" << input << "'";

      // A cold copy (empty DFA cache) must also agree.
      const pattern::Regex cold(re);
      ASSERT_EQ(cold.longest_prefix_match(input), nfa)
          << "cold pattern '" << pattern_text << "' input '" << input << "'";
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RegexDfaProperty,
                         ::testing::Values(101, 202, 303, 404, 505, 606, 707, 808, 909, 1010));

// --- random JSON round-trips -----------------------------------------------------------

json::Value random_json(Rng& rng, int depth) {
  const int pick = static_cast<int>(rng.uniform_int(0, depth <= 0 ? 4 : 6));
  switch (pick) {
    case 0: return json::Value(nullptr);
    case 1: return json::Value(rng.chance(0.5));
    case 2: return json::Value(rng.uniform_int(-1'000'000, 1'000'000));
    case 3: return json::Value(rng.uniform(-1e6, 1e6));
    case 4: {
      std::string s;
      const std::size_t n = rng.index(12);
      static const char* chars = "abc\"\\\n\t {}[]:,0é";
      for (std::size_t i = 0; i < n; ++i) s += chars[rng.index(16)];
      return json::Value(std::move(s));
    }
    case 5: {
      json::Array arr;
      const std::size_t n = rng.index(5);
      for (std::size_t i = 0; i < n; ++i) arr.push_back(random_json(rng, depth - 1));
      return json::Value(std::move(arr));
    }
    default: {
      json::Object obj;
      const std::size_t n = rng.index(5);
      for (std::size_t i = 0; i < n; ++i) {
        obj["k" + std::to_string(rng.index(10))] = random_json(rng, depth - 1);
      }
      return json::Value(std::move(obj));
    }
  }
}

class JsonProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(JsonProperty, DumpParseRoundTrip) {
  Rng rng(GetParam());
  for (int round = 0; round < 100; ++round) {
    const json::Value v = random_json(rng, 4);
    EXPECT_EQ(json::parse(v.dump()), v) << v.dump();
    EXPECT_EQ(json::parse(v.dump(2)), v) << v.dump(2);
    // Canonical form is a fixpoint.
    EXPECT_EQ(json::parse(v.dump()).dump(), v.dump());
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, JsonProperty, ::testing::Values(7, 11, 17, 23, 31));

// --- random template round-trips --------------------------------------------------------

class TemplateProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(TemplateProperty, FillExtractFillIsIdentity) {
  Rng rng(GetParam());
  static const char* kSeparators[] = {"/", "-", "?", "&", "=", "://", ".json"};
  for (int round = 0; round < 150; ++round) {
    pattern::FieldTemplate t;
    pattern::Bindings bindings;
    const std::size_t segments = 1 + rng.index(6);
    for (std::size_t i = 0; i < segments; ++i) {
      // Alternate literal separators and holes so extraction is unambiguous.
      t.append_literal(kSeparators[rng.index(7)]);
      const std::string hole = "h" + std::to_string(i);
      t.append_hole(hole);
      std::string value;
      const std::size_t len = rng.index(6);
      for (std::size_t j = 0; j < len; ++j) value += kAlphabet[rng.index(3)];
      bindings[hole] = value;
    }
    const auto filled = t.fill(bindings);
    ASSERT_TRUE(filled.has_value());
    const auto extracted = t.extract(*filled);
    ASSERT_TRUE(extracted.has_value()) << t.to_display_string() << " vs " << *filled;
    // The extracted bindings may legitimately differ from the originals when
    // a value contains a separator-like prefix, but refilling must reproduce
    // the identical string.
    EXPECT_EQ(t.fill(*extracted).value(), *filled) << t.to_display_string();
    // And the serialized template round-trips.
    ByteWriter w;
    t.serialize(w);
    ByteReader r(w.data());
    EXPECT_EQ(pattern::FieldTemplate::deserialize(r), t);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, TemplateProperty, ::testing::Values(41, 43, 47, 53));

}  // namespace
}  // namespace appx
