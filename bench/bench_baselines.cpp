// Baseline comparison (paper §7, related work): Orig vs a PALOMA-flavoured
// static-only prefetcher vs a Looxy-style URL-scanning proxy vs APPx, on the
// Wish model's main interaction and launch.
//
// Expected shape (the paper's qualitative argument, quantified):
//   * static-only reconstructs ZERO requests (every signature carries
//     run-time values), so it equals Orig;
//   * Looxy accelerates only the transactions whose full URLs appear in
//     response bodies (thumbnails, product photos) — a fraction of APPx's
//     win, and nothing for the POST-with-form-body API chains;
//   * APPx accelerates both.
#include <iostream>

#include "eval/experiments.hpp"
#include "eval/report.hpp"

int main() {
  using namespace appx;
  std::cout << "=== Baselines: Orig / static-only (PALOMA-like) / Looxy-like / APPx ===\n\n";

  const eval::AnalyzedApp app = eval::analyze_app(apps::make_wish());

  struct Row {
    const char* name;
    eval::TestbedConfig config;
  };
  std::vector<Row> rows;
  {
    eval::TestbedConfig orig;
    orig.prefetch_enabled = false;
    rows.push_back({"Orig", orig});
  }
  {
    eval::TestbedConfig static_only;
    static_only.proxy_kind = eval::ProxyKind::kStaticOnly;
    rows.push_back({"Static-only", static_only});
  }
  {
    eval::TestbedConfig looxy;
    looxy.proxy_kind = eval::ProxyKind::kLooxy;
    rows.push_back({"Looxy-like", looxy});
  }
  {
    eval::TestbedConfig appx;
    appx.prefetch_enabled = true;
    appx.proxy_config = eval::deployment_config(app);
    rows.push_back({"APPx", appx});
  }

  eval::TablePrinter table({"Proxy", "Main total (ms)", "Main net (ms)", "Launch total (ms)",
                            "Main cut", "Launch cut"});
  double base_main = 0, base_launch = 0;
  for (const Row& row : rows) {
    const auto main = eval::measure_main_interaction(app, row.config, 8);
    const auto launch = eval::measure_launch(app, row.config, 8);
    if (base_main == 0) {
      base_main = main.total_ms;
      base_launch = launch.total_ms;
    }
    table.add_row({row.name, eval::TablePrinter::fmt(main.total_ms),
                   eval::TablePrinter::fmt(main.network_ms),
                   eval::TablePrinter::fmt(launch.total_ms),
                   eval::TablePrinter::pct(1.0 - main.total_ms / base_main),
                   eval::TablePrinter::pct(1.0 - launch.total_ms / base_launch)});
    std::cout << "." << std::flush;
  }
  std::cout << "\n\n";
  table.print(std::cout);

  // Under the user-study workload Looxy's cache at least captures re-views
  // of the same item's images; APPx still dominates via the API chains.
  std::cout << "\nuser-trace workload (30 users x 3 min):\n\n";
  trace::TraceParams trace_params;
  const auto traces = trace::generate_traces(app.spec, trace_params);
  eval::TablePrinter trace_table({"Proxy", "Main p50 (ms)", "Main p90 (ms)", "Hits",
                                  "Median cut"});
  double base_median = 0;
  for (const Row& row : rows) {
    const auto result = eval::run_trace_experiment(app, row.config, traces);
    const double p50 = result.main_latency_ms.median();
    const double p90 = result.main_latency_ms.percentile(0.9);
    if (base_median == 0) base_median = p50;
    trace_table.add_row({row.name, eval::TablePrinter::fmt(p50), eval::TablePrinter::fmt(p90),
                         std::to_string(result.proxy_stats.cache_hits),
                         eval::TablePrinter::pct(1.0 - p50 / base_median)});
    std::cout << "." << std::flush;
  }
  std::cout << "\n\n";
  trace_table.print(std::cout);

  // Why static-only fails: nothing is reconstructible without learning.
  core::StaticOnlyEngine static_probe(&app.analysis.signatures);
  std::cout << "\nstatically complete requests (no run-time values needed): "
            << static_probe.statically_complete() << " of " << app.analysis.signatures.size()
            << " signatures — the PALOMA limitation §7 describes.\n";
  return 0;
}
