// bench_macro: macro-scale OPEN-LOOP load harness (ROADMAP item 1,
// DESIGN.md §5i).
//
// Drives a LiveProxyServer with 10k+ concurrent keep-alive connections
// replaying the 30-user study trace scaled up via trace::scale_traces
// (per-replica seeds, ramped session starts, jittered think times). The
// generator is an event-loop client built on net::EventLoop: every request
// has a scheduled arrival time fixed before the run, and latency is measured
// from that *intended* send time — a stalled server accrues queueing delay
// against the schedule instead of silently slowing the offered load (no
// coordinated omission). Contrast with bench_connscale, whose closed-loop
// numbers are labelled "loop": "closed".
//
// Process model: the origin + engine + proxy run in a forked child so the
// generator and the server each get a full RLIMIT_NOFILE table (10k conns
// need ~10k descriptors on EACH side), and so server RSS — reported per
// resident user — is measured on a process that holds only server state.
//
// Phases:
//   1. record  — replay each base user's trace once through apps::AppClient
//                against an in-process origin, recording every request's
//                wire bytes and its offset within its trace event.
//   2. ramp    — sessions connect at ramped, seeded start times.
//   3. measure — samples whose intended send time falls in the window feed
//                the hit/miss histograms; sustained RPS = completed/window.
//
// Emits one JSON object on stdout (recorded in BENCH_macro.json): sustained
// RPS, p50/p99/p99.9 user-perceived latency split hit/miss, prefetch hit
// ratio, connection errors, and server RSS per resident user.
//
// Usage: bench_macro [--users N] [--duration S] [--ramp S] [--dilation X]
//                    [--backend epoll|uring|auto] [--data-budget-kb N]
//                    [--smoke] [--gate-p99-ms X] [--gate-hit-ratio Y]
//
// --backend selects the server's event-loop I/O backend (EngineOptions
// .io_backend); the load generator itself always runs on epoll so an A/B
// compares servers, not generators.
#include <fcntl.h>
#include <sys/epoll.h>
#include <sys/socket.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <deque>
#include <fstream>
#include <memory>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "analysis/analyzer.hpp"
#include "apps/catalog.hpp"
#include "apps/client.hpp"
#include "apps/compiler.hpp"
#include "apps/server.hpp"
#include "core/sharded_proxy.hpp"
#include "eval/experiments.hpp"
#include "json/json.hpp"
#include "net/event_loop.hpp"
#include "net/http_io.hpp"
#include "net/rlimit.hpp"
#include "net/servers.hpp"
#include "net/socket.hpp"
#include "obs/metrics.hpp"
#include "sim/simulator.hpp"
#include "trace/trace.hpp"
#include "util/error.hpp"

namespace {

using namespace appx;

// --- configuration -------------------------------------------------------------------

struct Options {
  std::size_t users = 10'000;
  double duration_s = 30;      // measurement window
  double ramp_s = 10;          // session-start ramp
  double settle_s = 5;         // between end of ramp and start of window
  double dilation = 1.0;       // stretch trace think times
  std::size_t loop_threads = 1;
  std::string backend;  // server io_backend ("" = env/default epoll)
  // Per-user prefetch data budget (ProxyConfig.data_budget, KB per pacer
  // window; 0 = app default i.e. unlimited here). Lets an A/B hold
  // background prefetch volume constant across backends: a faster backend
  // otherwise drains the prefetch pipeline harder and, on a saturated host,
  // trades foreground tail latency for background throughput.
  std::size_t data_budget_kb = 0;
  std::uint64_t seed = 7;
  bool smoke = false;
  double gate_p99_ms = 250;     // smoke gates
  double gate_hit_ratio = 0.05;  // functioning-at-scale floor, not a target
                                 // (localhost races make intra-interaction
                                 // prefetches photo-finishes; the ratio climbs
                                 // with window length as sessions mature)
};

Options parse_args(int argc, char** argv) {
  Options opt;
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    const auto next = [&]() -> const char* {
      if (i + 1 >= argc) throw InvalidArgumentError("bench_macro: missing value for " +
                                                    std::string(arg));
      return argv[++i];
    };
    if (arg == "--users") opt.users = std::stoul(next());
    else if (arg == "--duration") opt.duration_s = std::stod(next());
    else if (arg == "--ramp") opt.ramp_s = std::stod(next());
    else if (arg == "--settle") opt.settle_s = std::stod(next());
    else if (arg == "--dilation") opt.dilation = std::stod(next());
    else if (arg == "--loops") opt.loop_threads = std::stoul(next());
    else if (arg == "--backend") opt.backend = next();
    else if (arg == "--data-budget-kb") opt.data_budget_kb = std::stoul(next());
    else if (arg == "--seed") opt.seed = std::stoull(next());
    else if (arg == "--gate-p99-ms") opt.gate_p99_ms = std::stod(next());
    else if (arg == "--gate-hit-ratio") opt.gate_hit_ratio = std::stod(next());
    else if (arg == "--smoke") {
      // Reduced scale for CI: enough concurrency to exercise the open-loop
      // machinery and the regression gates, small enough for a shared runner.
      opt.smoke = true;
      opt.users = 240;
      opt.duration_s = 10;
      opt.ramp_s = 2;
      opt.settle_s = 2;
    } else {
      throw InvalidArgumentError("bench_macro: unknown argument " + std::string(arg));
    }
  }
  return opt;
}

// --- phase 1: record per-base-user request streams -----------------------------------

// One recorded request: its event's index in the base trace, the offset from
// the event's start (pre-delay + earlier waves), and the wire bytes split at
// the end of the request line so the generator can stamp a per-replica
// X-Appx-User header without reserializing.
struct StepTemplate {
  std::size_t event_index = 0;
  Duration delta = 0;
  std::string pre;   // "POST /api/get-feed HTTP/1.1\r\n"
  std::string post;  // remaining head + body
};

struct BaseStream {
  std::vector<StepTemplate> steps;  // ordered by (event_index, delta)
};

// Replays `trace` through an AppClient against `origin` (synchronous
// transport), recording every sent request. Mirrors trace::TraceReplayer's
// serialization: an event starts after the previous interaction completed
// and its recorded think-time gap elapsed.
BaseStream record_stream(const apps::AppSpec& spec, apps::OriginServer& origin,
                         const trace::UserTrace& trace,
                         const std::set<std::pair<std::string, std::string>>& nonce_endpoints) {
  sim::Simulator sim;
  BaseStream out;
  std::size_t current_event = 0;
  SimTime event_start = 0;

  apps::AppClient client(
      &spec, apps::ClientEnv::for_user(spec, trace.user_id), &sim,
      [&](http::Request req, std::function<void(http::Response)> cb) {
        // Side-effectful anti-replay requests (fresh nonce per send) cannot
        // be replayed ×1000s — the origin 403s a reused nonce by design.
        // They are a tiny fraction of the stream; skip them and note it.
        if (!nonce_endpoints.contains({req.uri.host, req.uri.path})) {
          StepTemplate step;
          step.event_index = current_event;
          step.delta = sim.now() - event_start;
          const std::string wire = req.serialize();
          const auto line_end = wire.find("\r\n");
          step.pre = wire.substr(0, line_end + 2);
          step.post = wire.substr(line_end + 2);
          out.steps.push_back(std::move(step));
        }
        cb(origin.serve(req));
      },
      /*jitter=*/0);

  // Serial event driver (the recording analogue of TraceReplayer::run_event).
  std::function<void(std::size_t)> run_event = [&](std::size_t index) {
    if (index >= trace.events.size()) return;
    const trace::TraceEvent& event = trace.events[index];
    const Duration gap =
        index == 0 ? event.at : std::max<Duration>(0, event.at - trace.events[index - 1].at);
    sim.schedule(gap, [&, index] {
      const trace::TraceEvent& ev = trace.events[index];
      current_event = index;
      event_start = sim.now();
      if (!client.can_run(ev.interaction, ev.selection)) {
        run_event(index + 1);
        return;
      }
      client.run_interaction(ev.interaction, ev.selection,
                             [&, index](const apps::InteractionResult&) { run_event(index + 1); });
    });
  };
  run_event(0);
  sim.run();
  return out;
}

// --- phase 2/3: the open-loop generator ----------------------------------------------

using Clock = std::chrono::steady_clock;

struct SharedStats {
  obs::Histogram hit_us;
  obs::Histogram miss_us;
  std::atomic<std::uint64_t> sent{0};
  std::atomic<std::uint64_t> completed{0};
  std::atomic<std::uint64_t> completed_window{0};
  std::atomic<std::uint64_t> response_errors{0};  // >= 500 statuses
  std::atomic<std::uint64_t> conn_errors{0};      // failed connects, resets, parse errors
  std::atomic<std::uint64_t> connects_ok{0};
  std::atomic<std::int64_t> max_send_lag_us{0};   // generator behind its own schedule
};

// One user session: a non-blocking connection replaying its scheduled step
// stream on one generator loop. Loop-thread-only.
class UserConn : public std::enable_shared_from_this<UserConn> {
 public:
  UserConn(net::EventLoop* loop, const BaseStream* base, const trace::ScheduledSession* sched,
           std::uint16_t port, Clock::time_point epoch, std::int64_t window_start_us,
           std::int64_t window_end_us, SharedStats* stats)
      : loop_(loop), base_(base), sched_(sched), port_(port), epoch_(epoch),
        window_start_us_(window_start_us), window_end_us_(window_end_us), stats_(stats),
        user_header_("X-Appx-User: " + sched->user_id + "\r\n"),
        stream_(net::Fd{}) {}

  // Schedule the session's connect at its ramped start time.
  void arm() {
    loop_->add_timer(epoch_ + std::chrono::microseconds(sched_->start),
                     [self = shared_from_this()] { self->connect(); });
  }

  void shutdown() { close(/*error=*/false); }

 private:
  std::int64_t now_us() const {
    return std::chrono::duration_cast<std::chrono::microseconds>(Clock::now() - epoch_).count();
  }

  void connect() {
    if (closed_) return;
    try {
      stream_ = net::TcpStream::begin_connect("127.0.0.1", port_);
    } catch (const Error&) {
      stats_->conn_errors.fetch_add(1, std::memory_order_relaxed);
      closed_ = true;
      return;
    }
    connecting_ = true;
    events_ = EPOLLOUT;
    loop_->add_fd(stream_.fd(), events_,
                  [self = shared_from_this()](std::uint32_t ev) { self->on_events(ev); });
    registered_ = true;
  }

  void on_events(std::uint32_t ev) {
    if (closed_) return;
    if (connecting_) {
      if ((ev & (EPOLLERR | EPOLLHUP)) != 0 || stream_.connect_result() != 0) {
        close(/*error=*/true);
        return;
      }
      connecting_ = false;
      stats_->connects_ok.fetch_add(1, std::memory_order_relaxed);
      schedule_next_step();
      update_events();
      return;
    }
    if ((ev & EPOLLERR) != 0) {
      close(/*error=*/true);
      return;
    }
    if ((ev & (EPOLLIN | EPOLLHUP)) != 0) handle_readable();
    if (!closed_ && (ev & EPOLLOUT) != 0) flush();
    if (!closed_) update_events();
  }

  // The next step's absolute scheduled time, cycling the session (a fresh
  // app launch by the same user) when the stream is exhausted so connections
  // stay resident for the whole run.
  std::int64_t step_time_us(const StepTemplate& step) const {
    return sched_->event_at[step.event_index] + step.delta + cycle_offset_;
  }

  void schedule_next_step() {
    if (closed_ || base_->steps.empty()) return;
    if (next_step_ >= base_->steps.size()) {
      next_step_ = 0;
      // Re-launch after a think pause: span of the session plus 5s.
      const Duration span = sched_->event_at.back() - sched_->event_at.front();
      cycle_offset_ += span + seconds(5);
    }
    const std::int64_t at = step_time_us(base_->steps[next_step_]);
    loop_->add_timer(epoch_ + std::chrono::microseconds(at),
                     [self = shared_from_this()] { self->fire_step(); });
  }

  void fire_step() {
    if (closed_) return;
    const StepTemplate& step = base_->steps[next_step_];
    const std::int64_t intended = step_time_us(step);
    const std::int64_t lag = now_us() - intended;
    std::int64_t cur = stats_->max_send_lag_us.load(std::memory_order_relaxed);
    while (lag > cur &&
           !stats_->max_send_lag_us.compare_exchange_weak(cur, lag, std::memory_order_relaxed)) {
    }
    out_.append(step.pre);
    out_.append(user_header_);
    out_.append(step.post);
    sent_.push_back(intended);
    stats_->sent.fetch_add(1, std::memory_order_relaxed);
    ++next_step_;
    flush();
    if (closed_) return;
    update_events();
    schedule_next_step();
  }

  void flush() {
    while (out_off_ < out_.size()) {
      const ssize_t n = ::send(stream_.fd(), out_.data() + out_off_, out_.size() - out_off_,
                               MSG_NOSIGNAL);
      if (n < 0) {
        if (errno == EAGAIN || errno == EWOULDBLOCK) return;
        if (errno == EINTR) continue;
        close(/*error=*/true);
        return;
      }
      out_off_ += static_cast<std::size_t>(n);
    }
    out_.clear();
    out_off_ = 0;
  }

  void handle_readable() {
    char buf[16 * 1024];
    while (!closed_) {
      const ssize_t n = ::recv(stream_.fd(), buf, sizeof buf, 0);
      if (n > 0) {
        parser_.append(buf, static_cast<std::size_t>(n));
        continue;
      }
      if (n == 0) {
        // Orderly close with responses still owed = a dropped session.
        close(/*error=*/!sent_.empty());
        return;
      }
      if (errno == EAGAIN || errno == EWOULDBLOCK) break;
      if (errno == EINTR) continue;
      close(/*error=*/true);
      return;
    }
    drain_messages();
  }

  void drain_messages() {
    while (!closed_) {
      std::optional<std::string_view> message;
      try {
        message = parser_.next_message();
      } catch (const Error&) {
        close(/*error=*/true);
        return;
      }
      if (!message) return;
      if (sent_.empty()) {
        close(/*error=*/true);  // response with no request outstanding
        return;
      }
      const std::int64_t intended = sent_.front();
      sent_.pop_front();
      record_response(*message, intended);
    }
  }

  void record_response(std::string_view message, std::int64_t intended) {
    stats_->completed.fetch_add(1, std::memory_order_relaxed);
    // Minimal classification without a full parse: status from the line,
    // hit/miss from the proxy's marker header.
    const bool error = message.size() < 12 || message[9] == '5';
    const std::size_t head_end = message.find("\r\n\r\n");
    const std::string_view head =
        head_end == std::string_view::npos ? message : message.substr(0, head_end);
    const bool hit = head.find("X-Appx-Cache: hit") != std::string_view::npos;
    if (error) {
      stats_->response_errors.fetch_add(1, std::memory_order_relaxed);
      return;
    }
    if (intended < window_start_us_ || intended >= window_end_us_) return;
    const std::int64_t latency = std::max<std::int64_t>(0, now_us() - intended);
    stats_->completed_window.fetch_add(1, std::memory_order_relaxed);
    (hit ? stats_->hit_us : stats_->miss_us).record(latency);
  }

  void close(bool error) {
    if (closed_) return;
    closed_ = true;
    if (error) stats_->conn_errors.fetch_add(1, std::memory_order_relaxed);
    if (registered_) loop_->del_fd(stream_.fd());
    stream_ = net::TcpStream(net::Fd{});
  }

  void update_events() {
    const std::uint32_t desired =
        static_cast<std::uint32_t>(EPOLLIN) |
        (out_off_ < out_.size() ? static_cast<std::uint32_t>(EPOLLOUT) : 0U);
    if (desired == events_) return;
    events_ = desired;
    loop_->mod_fd(stream_.fd(), desired);
  }

  net::EventLoop* loop_;
  const BaseStream* base_;
  const trace::ScheduledSession* sched_;
  std::uint16_t port_;
  Clock::time_point epoch_;
  std::int64_t window_start_us_;
  std::int64_t window_end_us_;
  SharedStats* stats_;
  std::string user_header_;

  net::TcpStream stream_;
  net::HttpParser parser_;
  std::string out_;
  std::size_t out_off_ = 0;
  std::deque<std::int64_t> sent_;  // intended send times, FIFO per HTTP/1.1
  std::size_t next_step_ = 0;
  Duration cycle_offset_ = 0;
  std::uint32_t events_ = 0;
  bool connecting_ = false;
  bool registered_ = false;
  bool closed_ = false;
};

// --- server child process ------------------------------------------------------------

// Child body: origin + engine + proxy; writes "<proxy-port>\n" to port_fd,
// then serves until control_fd reaches EOF (parent closed it or died).
[[noreturn]] void run_server(const Options& opt, int port_fd, int control_fd) {
  try {
    const apps::AppSpec spec = apps::make_wish();
    apps::OriginServer origin(&spec);
    const eval::AnalyzedApp app = eval::analyze_app(spec);
    core::ProxyConfig config = eval::deployment_config(app);
    if (opt.data_budget_kb != 0) config.data_budget = opt.data_budget_kb * 1024;

    core::EngineOptions engine_options;
    engine_options.seed = opt.seed;
    engine_options.shards = 0;
    engine_options.max_users = 0;  // every replayed user stays resident
    engine_options.user_idle_timeout.reset();
    engine_options.cache_max_entries = 512;        // per user
    engine_options.cache_max_bytes = megabytes(4);  // per user
    engine_options.loop_threads = opt.loop_threads;
    engine_options.request_workers = 8;
    engine_options.prefetch_workers = 2;
    engine_options.max_prefetch_queue = 8192;
    // Per-user scheduler bound (lowest-priority eviction) plus cost-aware
    // admission: under overload the engine sheds the worst jobs *before*
    // enqueue, so dropped-after-enqueue stays ~0 (gated below in --smoke).
    engine_options.max_queued_prefetches = 64;
    engine_options.policy.enabled = true;
    // Localhost tuning: origin savings are ~2 ms (not the 100s of ms of a
    // real WAN), so the absolute ms-per-KB floor sits ~1000x below the fig13
    // deployment value — it only prunes repeatedly-unused large responses —
    // and a healthy queue depth at 240+ concurrent users is far above the
    // library default.
    engine_options.policy.min_value = 0.0001;
    engine_options.policy.target_queue_depth = 4096;
    // Think-time tails (exp-distributed, dilated) must not be reaped as idle.
    engine_options.conn_idle_timeout = minutes(30);
    engine_options.listen_backlog = 0;  // SOMAXCONN
    engine_options.min_file_descriptors = opt.users + 512;
    engine_options.io_backend = opt.backend;

    core::ShardedProxyEngine engine(&app.analysis.signatures, &config, engine_options);
    net::LiveOriginServer upstream(&origin, 0, /*loop_threads=*/1);
    net::LiveProxyServer::UpstreamMap upstreams;
    for (const apps::EndpointSpec& ep : spec.endpoints) upstreams[ep.host] = upstream.port();
    net::LiveProxyServer proxy(&engine, std::move(upstreams), 0, engine_options);

    const std::string port_line = std::to_string(proxy.port()) + "\n";
    if (::write(port_fd, port_line.data(), port_line.size()) !=
        static_cast<ssize_t>(port_line.size())) {
      std::_Exit(3);
    }
    ::close(port_fd);

    char byte;
    while (true) {
      const ssize_t n = ::read(control_fd, &byte, 1);
      if (n == 0) break;               // parent done (or gone): shut down
      if (n < 0 && errno != EINTR) break;
    }
    proxy.stop();
    upstream.stop();
    std::_Exit(0);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "bench_macro[server]: %s\n", e.what());
    std::_Exit(2);
  }
}

// VmRSS of a process in KB, from /proc/<pid>/status.
long read_vm_rss_kb(pid_t pid) {
  std::ifstream in("/proc/" + std::to_string(pid) + "/status");
  std::string line;
  while (std::getline(in, line)) {
    if (line.rfind("VmRSS:", 0) == 0) {
      return std::strtol(line.c_str() + 6, nullptr, 10);
    }
  }
  return 0;
}

json::Value scrape_metrics(std::uint16_t port) {
  try {
    net::TcpStream stream = net::TcpStream::connect("127.0.0.1", port, seconds(5));
    stream.set_read_timeout(seconds(5));
    http::Request req;
    req.method = "GET";
    req.uri = http::Uri::parse("http://proxy.local/appx/metrics.json");
    net::write_request(stream, req);
    net::HttpReader reader(&stream);
    const auto response = reader.read_response();
    if (!response || !response->ok()) return json::Value();
    return json::parse(response->body.view());
  } catch (const Error&) {
    return json::Value();
  }
}

struct Quantiles {
  double p50_ms = 0, p99_ms = 0, p999_ms = 0;
  std::uint64_t count = 0;
};

Quantiles quantiles(const obs::Histogram& h) {
  Quantiles q;
  q.count = static_cast<std::uint64_t>(h.count());
  if (q.count == 0) return q;
  q.p50_ms = static_cast<double>(h.quantile(0.50)) / 1000.0;
  q.p99_ms = static_cast<double>(h.quantile(0.99)) / 1000.0;
  q.p999_ms = static_cast<double>(h.quantile(0.999)) / 1000.0;
  return q;
}

void print_quantiles(const char* name, const Quantiles& q, bool last) {
  std::printf("      \"%s\": {\"count\": %llu, \"p50_ms\": %.2f, \"p99_ms\": %.2f, "
              "\"p999_ms\": %.2f}%s\n",
              name, static_cast<unsigned long long>(q.count), q.p50_ms, q.p99_ms, q.p999_ms,
              last ? "" : ",");
}

}  // namespace

int main(int argc, char** argv) {
  Options opt;
  try {
    opt = parse_args(argc, argv);
  } catch (const Error& e) {
    std::fprintf(stderr, "%s\n", e.what());
    return 2;
  }

  // Fail fast on descriptor capacity for the GENERATOR side (the server
  // checks its own via EngineOptions.min_file_descriptors in its process).
  if (const util::Error err = net::ensure_fd_capacity(opt.users + 128)) {
    std::fprintf(stderr, "bench_macro: %s\n", err.message().c_str());
    return 2;
  }

  // Server child: its own process = its own fd table and a clean RSS signal.
  int port_pipe[2];
  int control_pipe[2];
  if (::pipe(port_pipe) != 0 || ::pipe(control_pipe) != 0) {
    std::perror("bench_macro: pipe");
    return 2;
  }
  const pid_t server_pid = ::fork();
  if (server_pid < 0) {
    std::perror("bench_macro: fork");
    return 2;
  }
  if (server_pid == 0) {
    ::close(port_pipe[0]);
    ::close(control_pipe[1]);
    run_server(opt, port_pipe[1], control_pipe[0]);
  }
  ::close(port_pipe[1]);
  ::close(control_pipe[0]);

  // Wait for the proxy port.
  std::string port_text;
  char ch;
  while (::read(port_pipe[0], &ch, 1) == 1 && ch != '\n') port_text.push_back(ch);
  ::close(port_pipe[0]);
  if (port_text.empty()) {
    std::fprintf(stderr, "bench_macro: server failed to start\n");
    ::close(control_pipe[1]);
    int status = 0;
    ::waitpid(server_pid, &status, 0);
    return 2;
  }
  const auto proxy_port = static_cast<std::uint16_t>(std::stoul(port_text));

  int exit_code = 0;
  {
    // --- phase 1: record base request streams ------------------------------------
    const apps::AppSpec spec = apps::make_wish();
    apps::OriginServer recording_origin(&spec);
    std::set<std::pair<std::string, std::string>> nonce_endpoints;
    for (const apps::EndpointSpec& ep : spec.endpoints) {
      if (ep.requires_nonce) nonce_endpoints.insert({ep.host, ep.path});
    }
    trace::TraceParams trace_params;
    trace_params.seed = opt.seed;
    const std::vector<trace::UserTrace> base_traces = trace::generate_traces(spec, trace_params);

    std::vector<BaseStream> streams;
    streams.reserve(base_traces.size());
    for (const trace::UserTrace& trace : base_traces) {
      streams.push_back(record_stream(spec, recording_origin, trace, nonce_endpoints));
    }

    // --- phase 2: schedule replica sessions --------------------------------------
    trace::ScaleParams scale;
    scale.replicas = std::max<std::size_t>(1, (opt.users + base_traces.size() - 1) /
                                                  base_traces.size());
    scale.seed = opt.seed;
    scale.ramp = static_cast<Duration>(opt.ramp_s * 1e6);
    scale.time_dilation = opt.dilation;
    std::vector<trace::ScheduledSession> sessions = trace::scale_traces(base_traces, scale);
    if (sessions.size() > opt.users) sessions.resize(opt.users);

    const std::int64_t window_start_us =
        static_cast<std::int64_t>((opt.ramp_s + opt.settle_s) * 1e6);
    const std::int64_t window_end_us =
        window_start_us + static_cast<std::int64_t>(opt.duration_s * 1e6);

    // --- phase 3: run the open-loop generator ------------------------------------
    SharedStats stats;
    const long rss_before_kb = read_vm_rss_kb(server_pid);
    const Clock::time_point epoch = Clock::now();

    // The generator stays on epoll regardless of --backend: an A/B run must
    // vary only the server under test.
    std::vector<std::unique_ptr<net::EventLoop>> loops;
    for (std::size_t i = 0; i < std::max<std::size_t>(1, opt.loop_threads); ++i) {
      loops.push_back(net::make_epoll_event_loop());
    }
    std::vector<std::vector<std::shared_ptr<UserConn>>> conns_per_loop(loops.size());
    for (std::size_t s = 0; s < sessions.size(); ++s) {
      const std::size_t l = s % loops.size();
      conns_per_loop[l].push_back(std::make_shared<UserConn>(
          loops[l].get(), &streams[sessions[s].base_index], &sessions[s], proxy_port, epoch,
          window_start_us, window_end_us, &stats));
    }
    std::vector<std::thread> loop_threads;
    for (std::size_t l = 0; l < loops.size(); ++l) {
      net::EventLoop* loop = loops[l].get();
      auto* conns = &conns_per_loop[l];
      loop_threads.emplace_back([loop, conns] {
        loop->post([conns] {
          for (const auto& conn : *conns) conn->arm();
        });
        loop->run();
      });
    }

    std::this_thread::sleep_until(epoch + std::chrono::microseconds(window_end_us));
    const long rss_after_kb = read_vm_rss_kb(server_pid);
    const std::size_t resident = stats.connects_ok.load() - stats.conn_errors.load() > 0
                                     ? stats.connects_ok.load() - stats.conn_errors.load()
                                     : stats.connects_ok.load();
    const json::Value server_metrics = scrape_metrics(proxy_port);

    for (std::size_t l = 0; l < loops.size(); ++l) {
      net::EventLoop* loop = loops[l].get();
      auto* conns = &conns_per_loop[l];
      loop->post([conns] {
        for (const auto& conn : *conns) conn->shutdown();
      });
      loop->stop();
    }
    for (std::thread& t : loop_threads) t.join();

    // --- report ------------------------------------------------------------------
    const Quantiles hit = quantiles(stats.hit_us);
    const Quantiles miss = quantiles(stats.miss_us);
    obs::Histogram all_us;
    all_us.merge(stats.hit_us);
    all_us.merge(stats.miss_us);
    const Quantiles all = quantiles(all_us);
    const double window_s = opt.duration_s;
    const double rps = static_cast<double>(stats.completed_window.load()) / window_s;
    const double hit_ratio =
        hit.count + miss.count > 0
            ? static_cast<double>(hit.count) / static_cast<double>(hit.count + miss.count)
            : 0;
    const double rss_delta_mb = static_cast<double>(rss_after_kb - rss_before_kb) / 1024.0;
    const double rss_per_user_kb =
        resident > 0 ? static_cast<double>(rss_after_kb - rss_before_kb) /
                           static_cast<double>(resident)
                     : 0;

    std::printf("{\n  \"macro\": {\n");
    std::printf("    \"loop\": \"open\",\n");
    std::printf("    \"io_backend\": \"%s\",\n", net::resolve_io_backend(opt.backend).c_str());
    std::printf("    \"users\": %zu, \"base_users\": %zu, \"replicas\": %zu,\n", sessions.size(),
                base_traces.size(), scale.replicas);
    std::printf("    \"ramp_s\": %.1f, \"settle_s\": %.1f, \"window_s\": %.1f, "
                "\"dilation\": %.2f,\n",
                opt.ramp_s, opt.settle_s, window_s, opt.dilation);
    std::printf("    \"connections\": {\"established\": %llu, \"errors\": %llu},\n",
                static_cast<unsigned long long>(stats.connects_ok.load()),
                static_cast<unsigned long long>(stats.conn_errors.load()));
    std::printf("    \"requests\": {\"sent\": %llu, \"completed\": %llu, "
                "\"in_window\": %llu, \"response_errors\": %llu, \"sustained_rps\": %.0f},\n",
                static_cast<unsigned long long>(stats.sent.load()),
                static_cast<unsigned long long>(stats.completed.load()),
                static_cast<unsigned long long>(stats.completed_window.load()),
                static_cast<unsigned long long>(stats.response_errors.load()), rps);
    std::printf("    \"latency_ms\": {\n");
    print_quantiles("hit", hit, false);
    print_quantiles("miss", miss, false);
    print_quantiles("all", all, true);
    std::printf("    },\n");
    std::printf("    \"prefetch_hit_ratio\": %.3f,\n", hit_ratio);
    std::printf("    \"generator_max_send_lag_ms\": %.2f,\n",
                static_cast<double>(stats.max_send_lag_us.load()) / 1000.0);
    std::printf("    \"server\": {\"rss_delta_mb\": %.1f, \"rss_per_resident_user_kb\": %.1f",
                rss_delta_mb, rss_per_user_kb);
    long long queue_dropped = 0;
    bool have_server_metrics = false;
    if (server_metrics.is_object()) {
      have_server_metrics = true;
      const json::Value* counters = server_metrics.find("counters");
      const auto counter = [&](const std::string& name) -> long long {
        const json::Value* v =
            counters != nullptr && counters->is_object() ? counters->find(name) : nullptr;
        return v != nullptr ? static_cast<long long>(v->as_int()) : 0;
      };
      queue_dropped = counter("appx_proxy_queue_dropped_total");
      const json::Value* gauges = server_metrics.find("gauges");
      const json::Value* thr =
          gauges != nullptr && gauges->is_object() ? gauges->find("appx_policy_threshold") : nullptr;
      const double threshold =
          thr != nullptr ? static_cast<double>(thr->as_int()) / 1e6 : 0.0;
      const long long prefetch_bytes = counter("appx_prefetch_bytes_total");
      const long long wasted_bytes = counter("appx_prefetch_wasted_bytes_total");
      const double waste_ratio =
          prefetch_bytes > 0 ? static_cast<double>(wasted_bytes) /
                                   static_cast<double>(prefetch_bytes)
                             : 0.0;
      std::printf(",\n      \"upstream_pool_reuse\": %lld, \"upstream_pool_connect\": %lld, "
                  "\"prefetch_queue_dropped\": %lld, \"prefetch_dropped\": %lld,\n",
                  counter("appx_upstream_reuse_total"), counter("appx_upstream_connect_total"),
                  queue_dropped, counter("appx_prefetch_dropped_total"));
      std::printf("      \"prefetch_skipped_queue_full\": %lld,\n",
                  counter(obs::labeled("appx_prefetch_skipped_total", {{"reason", "queue_full"}})));
      std::printf("      \"policy\": {\"admitted\": %lld, \"rejected_value\": %lld, "
                  "\"rejected_budget\": %lld, \"threshold\": %.6f},\n",
                  counter("appx_policy_admitted_total"),
                  counter(obs::labeled("appx_policy_rejected_total", {{"reason", "value"}})),
                  counter(obs::labeled("appx_policy_rejected_total", {{"reason", "budget"}})),
                  threshold);
      std::printf("      \"waste\": {\"prefetch_bytes\": %lld, \"wasted_bytes\": %lld, "
                  "\"wasted_entries\": %lld, \"ratio\": %.3f}",
                  prefetch_bytes, wasted_bytes, counter("appx_prefetch_wasted_entries_total"),
                  waste_ratio);
    }
    std::printf("}\n  }\n}\n");

    // --- smoke gates -------------------------------------------------------------
    if (opt.smoke) {
      if (stats.conn_errors.load() != 0) {
        std::fprintf(stderr, "bench_macro: GATE FAIL: %llu connection errors (want 0)\n",
                     static_cast<unsigned long long>(stats.conn_errors.load()));
        exit_code = 1;
      }
      if (!have_server_metrics) {
        std::fprintf(stderr, "bench_macro: GATE FAIL: could not scrape server metrics\n");
        exit_code = 1;
      } else if (queue_dropped != 0) {
        // Cost-aware admission + lowest-priority queue eviction should shed
        // work before enqueue; jobs dropped after enqueue mean thrash.
        std::fprintf(stderr,
                     "bench_macro: GATE FAIL: %lld prefetch jobs dropped after enqueue "
                     "(want 0)\n",
                     queue_dropped);
        exit_code = 1;
      }
      if (all.count == 0) {
        std::fprintf(stderr, "bench_macro: GATE FAIL: no samples in measurement window\n");
        exit_code = 1;
      } else {
        if (all.p99_ms > opt.gate_p99_ms) {
          std::fprintf(stderr, "bench_macro: GATE FAIL: p99 %.1f ms > %.1f ms\n", all.p99_ms,
                       opt.gate_p99_ms);
          exit_code = 1;
        }
        if (hit_ratio < opt.gate_hit_ratio) {
          std::fprintf(stderr, "bench_macro: GATE FAIL: hit ratio %.3f < %.3f\n", hit_ratio,
                       opt.gate_hit_ratio);
          exit_code = 1;
        }
      }
      if (exit_code == 0) {
        std::fprintf(stderr,
                     "bench_macro: smoke gates pass (p99 %.1f ms <= %.1f, hit ratio %.3f >= "
                     "%.3f, 0 conn errors)\n",
                     all.p99_ms, opt.gate_p99_ms, hit_ratio, opt.gate_hit_ratio);
      }
    }
  }

  ::close(control_pipe[1]);  // EOF: child stops its servers and exits
  int status = 0;
  ::waitpid(server_pid, &status, 0);
  if (!WIFEXITED(status) || WEXITSTATUS(status) != 0) {
    std::fprintf(stderr, "bench_macro: server child exited abnormally\n");
    return exit_code != 0 ? exit_code : 2;
  }
  return exit_code;
}
