// Component microbenchmarks (google-benchmark): throughput of the pieces on
// the proxy's per-message fast path — pattern matching, template fill/extract,
// JSON parsing, signature matching, dynamic learning, cache lookup — plus the
// offline static-analysis cost.
#include <benchmark/benchmark.h>

#include "analysis/analyzer.hpp"
#include "apps/catalog.hpp"
#include "apps/compiler.hpp"
#include "apps/server.hpp"
#include "core/learning.hpp"
#include "core/proxy.hpp"
#include "json/json.hpp"
#include "pattern/regex.hpp"

namespace {

using namespace appx;

void BM_RegexCompile(benchmark::State& state) {
  for (auto _ : state) {
    pattern::Regex re(".*/api/tab/[0-9]+/content");
    benchmark::DoNotOptimize(re);
  }
}
BENCHMARK(BM_RegexCompile);

void BM_RegexMatch(benchmark::State& state) {
  // The seed engine's execution path: NFA simulation, one state set per byte.
  const pattern::Regex re(".*/api/tab/[0-9]+/content");
  const std::string input = "https://api.wish.example/api/tab/7/content";
  for (auto _ : state) {
    benchmark::DoNotOptimize(re.longest_prefix_match_nfa(input));
  }
}
BENCHMARK(BM_RegexMatch);

void BM_RegexMatchDFA(benchmark::State& state) {
  // Same pattern and input through the lazy DFA (full_match's default path);
  // after warm-up every byte is a single cached-transition lookup.
  const pattern::Regex re(".*/api/tab/[0-9]+/content");
  const std::string input = "https://api.wish.example/api/tab/7/content";
  for (auto _ : state) {
    benchmark::DoNotOptimize(re.full_match(input));
  }
  state.counters["dfa_states"] = static_cast<double>(re.dfa_state_count());
}
BENCHMARK(BM_RegexMatchDFA);

void BM_TemplateExtract(benchmark::State& state) {
  const auto t = pattern::FieldTemplate::parse("https://{host}/product/{pid:[0-9a-f]+}/img");
  const std::string input = "https://img.wish.example/product/0c99f/img";
  for (auto _ : state) {
    benchmark::DoNotOptimize(t.extract(input));
  }
}
BENCHMARK(BM_TemplateExtract);

void BM_TemplateFill(benchmark::State& state) {
  const auto t = pattern::FieldTemplate::parse("https://{host}/product/{pid}/img");
  const pattern::Bindings bindings{{"host", "img.wish.example"}, {"pid", "0c99f"}};
  for (auto _ : state) {
    benchmark::DoNotOptimize(t.fill(bindings));
  }
}
BENCHMARK(BM_TemplateFill);

void BM_JsonParseFeed(benchmark::State& state) {
  const apps::AppSpec spec = apps::make_wish();
  apps::OriginServer server(&spec);
  http::Request req;
  req.method = "POST";
  req.uri = http::Uri::parse("https://api.wish.example/api/get-feed?offset=0&count=30");
  req.headers.set("Cookie", "c");
  req.headers.set("User-Agent", "ua");
  req.set_form_fields({{"_client", "android"}, {"_ver", "4.13.0"}});
  const std::string body = server.serve(req).body.str();
  state.counters["body_bytes"] = static_cast<double>(body.size());
  for (auto _ : state) {
    benchmark::DoNotOptimize(json::parse(body));
  }
}
BENCHMARK(BM_JsonParseFeed);

void BM_SignatureMatch(benchmark::State& state) {
  // Match one concrete request against the full 120-signature Wish set —
  // the proxy's per-request signature identification cost.
  static const auto result = analysis::analyze(apps::compile_app(apps::make_wish()));
  http::Request req;
  req.method = "POST";
  req.uri = http::Uri::parse("https://api.wish.example/product/get");
  req.headers.set("Cookie", "c");
  req.headers.set("User-Agent", "ua");
  http::FormFields fields{{"cid", "0c99f"}};
  for (int i = 0; i < 15; ++i) fields.emplace_back("attr" + std::to_string(i), "v");
  fields.emplace_back("_client", "android");
  fields.emplace_back("_ver", "4.13.0");
  fields.emplace_back("_build", "amazon");
  req.set_form_fields(fields);
  for (auto _ : state) {
    benchmark::DoNotOptimize(result.signatures.match_request(req));
  }
}
BENCHMARK(BM_SignatureMatch);

// A set of n signatures with distinct literal endpoints plus one concrete
// request hitting the *last* signature — worst case for a linear scan, and
// the shape the multi-app proxy sees (many apps, one matching endpoint).
core::SignatureSet make_dispatch_set(int n) {
  core::SignatureSet set;
  for (int i = 0; i < n; ++i) {
    core::TransactionSignature sig;
    sig.app = "app" + std::to_string(i % 4);
    sig.label = "ep" + std::to_string(i);
    sig.request.method = i % 2 == 0 ? "GET" : "POST";
    sig.request.scheme = pattern::FieldTemplate::literal("https");
    sig.request.host = pattern::FieldTemplate::hole("host");
    sig.request.path = pattern::FieldTemplate::literal("/api/ep" + std::to_string(i) + "/get");
    sig.request.query = {{core::FieldLocation::kQuery, "v",
                          pattern::FieldTemplate::hole("v" + std::to_string(i)), false}};
    set.add(std::move(sig));
  }
  return set;
}

http::Request make_dispatch_request(int n) {
  http::Request req;
  req.method = (n - 1) % 2 == 0 ? "GET" : "POST";
  req.uri = http::Uri::parse("https://api.bench.example/api/ep" + std::to_string(n - 1) +
                             "/get?v=1");
  return req;
}

void BM_SignatureDispatch(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const core::SignatureSet set = make_dispatch_set(n);
  const http::Request req = make_dispatch_request(n);
  for (auto _ : state) {
    benchmark::DoNotOptimize(set.match_request(req));
  }
}
BENCHMARK(BM_SignatureDispatch)->Arg(8)->Arg(64)->Arg(256);

void BM_SignatureDispatchLinear(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const core::SignatureSet set = make_dispatch_set(n);
  const http::Request req = make_dispatch_request(n);
  for (auto _ : state) {
    benchmark::DoNotOptimize(set.match_request_linear(req));
  }
}
BENCHMARK(BM_SignatureDispatchLinear)->Arg(8)->Arg(64)->Arg(256);

void BM_DynamicLearningFeed(benchmark::State& state) {
  // One full learning pass over a 30-item feed response: instance creation
  // plus replication for every configured successor.
  static const auto result = analysis::analyze(apps::compile_app(apps::make_wish()));
  const apps::AppSpec spec = apps::make_wish();
  apps::OriginServer server(&spec);
  http::Request req;
  req.method = "POST";
  req.uri = http::Uri::parse("https://api.wish.example/api/get-feed?offset=0&count=30");
  req.headers.set("Cookie", "c");
  req.headers.set("User-Agent", "ua");
  req.set_form_fields({{"_client", "android"}, {"_ver", "4.13.0"}});
  const http::Response resp = server.serve(req);
  for (auto _ : state) {
    core::LearningEngine engine(&result.signatures);
    benchmark::DoNotOptimize(engine.observe(req, resp));
  }
}
BENCHMARK(BM_DynamicLearningFeed);

void BM_CacheLookup(benchmark::State& state) {
  core::PrefetchCache cache;
  std::vector<std::string> keys;
  for (int i = 0; i < 1000; ++i) {
    keys.push_back("key" + std::to_string(i));
    core::PrefetchCache::Entry entry;
    entry.expires_at = 1'000'000;
    cache.put(keys.back(), entry);
  }
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(cache.get(keys[i % keys.size()], 0));
    ++i;
  }
}
BENCHMARK(BM_CacheLookup);

void BM_StaticAnalysisWish(benchmark::State& state) {
  const ir::Program program = apps::compile_app(apps::make_wish());
  for (auto _ : state) {
    benchmark::DoNotOptimize(analysis::analyze(program));
  }
  state.counters["instructions"] = static_cast<double>(program.instruction_count());
}
BENCHMARK(BM_StaticAnalysisWish)->Unit(benchmark::kMillisecond);

void BM_SapkRoundTrip(benchmark::State& state) {
  const ir::Program program = apps::compile_app(apps::make_wish());
  for (auto _ : state) {
    benchmark::DoNotOptimize(ir::Program::deserialize(program.serialize()));
  }
}
BENCHMARK(BM_SapkRoundTrip)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
