// Figure 13: User-perceived latency of main interactions when communicating
// with origin servers — "Orig" (no prefetching) vs "APPx", split into network
// and processing delay. Average of 10 runs per app.
#include <iostream>

#include "eval/experiments.hpp"
#include "eval/report.hpp"

int main() {
  using namespace appx;
  std::cout << "=== Figure 13: main-interaction latency, Orig vs APPx ===\n\n";

  eval::TablePrinter table({"App", "Setup", "Total (ms)", "Network (ms)", "Processing (ms)",
                            "p50 (ms)", "p95 (ms)", "p99 (ms)", "Reduction"});
  for (const eval::AnalyzedApp& app : eval::analyze_all_apps()) {
    eval::TestbedConfig orig;
    orig.prefetch_enabled = false;
    const auto base = eval::measure_main_interaction(app, orig, 10);

    eval::TestbedConfig accel;
    accel.prefetch_enabled = true;
    accel.proxy_config = eval::deployment_config(app);
    const auto fast = eval::measure_main_interaction(app, accel, 10);

    table.add_row({app.spec.name, "Orig", eval::TablePrinter::fmt(base.total_ms),
                   eval::TablePrinter::fmt(base.network_ms),
                   eval::TablePrinter::fmt(base.processing_ms),
                   eval::TablePrinter::fmt(base.p50_ms), eval::TablePrinter::fmt(base.p95_ms),
                   eval::TablePrinter::fmt(base.p99_ms), ""});
    table.add_row({"", "APPx", eval::TablePrinter::fmt(fast.total_ms),
                   eval::TablePrinter::fmt(fast.network_ms),
                   eval::TablePrinter::fmt(fast.processing_ms),
                   eval::TablePrinter::fmt(fast.p50_ms), eval::TablePrinter::fmt(fast.p95_ms),
                   eval::TablePrinter::fmt(fast.p99_ms),
                   eval::TablePrinter::pct(1.0 - fast.total_ms / base.total_ms)});
    std::cout << "." << std::flush;
  }
  std::cout << "\n\n";
  table.print(std::cout);
  std::cout << "\n(paper Fig. 13: Wish 1.7->0.9 s (47%), Geek 2.4->1.1 (54%), DoorDash\n"
               " 2.1->0.9 (58%), Purple Ocean 2.5->0.9 (62%), Postmates 1.8->0.8 (53%);\n"
               " network-delay speedups of 2.5-8.7x; processing delay unchanged)\n";
  return 0;
}
