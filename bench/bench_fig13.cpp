// Figure 13: User-perceived latency of main interactions when communicating
// with origin servers — "Orig" (no prefetching) vs "APPx", split into network
// and processing delay. Average of 10 runs per app.
//
// --policy mode: APPx-vs-APPx comparison of the cost-aware policy engine
// (DESIGN.md §5j). Runs the main-interaction (Fig. 13) and launch (Fig. 14)
// scenarios with value-based admission off and on, and gates on the PR's
// acceptance criteria: policy-on must issue at most 60% of policy-off's
// prefetch bytes while keeping hit-path p99 within 5%.
#include <cstring>
#include <iostream>
#include <vector>

#include "eval/experiments.hpp"
#include "eval/report.hpp"

namespace {

int run_fig13() {
  using namespace appx;
  std::cout << "=== Figure 13: main-interaction latency, Orig vs APPx ===\n\n";

  eval::TablePrinter table({"App", "Setup", "Total (ms)", "Network (ms)", "Processing (ms)",
                            "p50 (ms)", "p95 (ms)", "p99 (ms)", "Reduction"});
  for (const eval::AnalyzedApp& app : eval::analyze_all_apps()) {
    eval::TestbedConfig orig;
    orig.prefetch_enabled = false;
    const auto base = eval::measure_main_interaction(app, orig, 10);

    eval::TestbedConfig accel;
    accel.prefetch_enabled = true;
    accel.proxy_config = eval::deployment_config(app);
    const auto fast = eval::measure_main_interaction(app, accel, 10);

    table.add_row({app.spec.name, "Orig", eval::TablePrinter::fmt(base.total_ms),
                   eval::TablePrinter::fmt(base.network_ms),
                   eval::TablePrinter::fmt(base.processing_ms),
                   eval::TablePrinter::fmt(base.p50_ms), eval::TablePrinter::fmt(base.p95_ms),
                   eval::TablePrinter::fmt(base.p99_ms), ""});
    table.add_row({"", "APPx", eval::TablePrinter::fmt(fast.total_ms),
                   eval::TablePrinter::fmt(fast.network_ms),
                   eval::TablePrinter::fmt(fast.processing_ms),
                   eval::TablePrinter::fmt(fast.p50_ms), eval::TablePrinter::fmt(fast.p95_ms),
                   eval::TablePrinter::fmt(fast.p99_ms),
                   eval::TablePrinter::pct(1.0 - fast.total_ms / base.total_ms)});
    std::cout << "." << std::flush;
  }
  std::cout << "\n\n";
  table.print(std::cout);
  std::cout << "\n(paper Fig. 13: Wish 1.7->0.9 s (47%), Geek 2.4->1.1 (54%), DoorDash\n"
               " 2.1->0.9 (58%), Purple Ocean 2.5->0.9 (62%), Postmates 1.8->0.8 (53%);\n"
               " network-delay speedups of 2.5-8.7x; processing delay unchanged)\n";
  return 0;
}

int run_policy_comparison() {
  using namespace appx;
  std::cout << "=== Policy smoke: value-based admission off vs on ===\n\n";

  // More runs than the headline figure: per-signature hit probabilities only
  // separate once a signature has been prefetched (and not used) repeatedly.
  constexpr int kRuns = 30;

  eval::TablePrinter table({"App", "Scenario", "Setup", "p99 (ms)", "Prefetch (KB)",
                            "Wasted (KB)", "Waste", "Admit", "Rej-val", "Rej-bgt"});
  double bytes_off = 0;
  double bytes_on = 0;
  std::vector<double> p99_ratios;
  for (const eval::AnalyzedApp& app : eval::analyze_all_apps()) {
    eval::TestbedConfig off;
    off.prefetch_enabled = true;
    off.proxy_config = eval::deployment_config(app);

    eval::TestbedConfig on = off;
    on.proxy_config.policy.enabled = true;
    // Explicit bench tuning rather than the library default: the simulated
    // apps' fan-out signatures are worth ~p_use * saving/KB; this floor keeps
    // the sometimes-used ones while cutting the never-used tail.
    on.proxy_config.policy.min_value = 0.3;

    struct Scenario {
      const char* name;
      eval::Breakdown (*measure)(const eval::AnalyzedApp&, eval::TestbedConfig, int);
    };
    const Scenario scenarios[] = {{"main (Fig13)", eval::measure_main_interaction},
                                  {"launch (Fig14)", eval::measure_launch}};
    for (const Scenario& sc : scenarios) {
      const eval::Breakdown base = sc.measure(app, off, kRuns);
      const eval::Breakdown tuned = sc.measure(app, on, kRuns);
      bytes_off += static_cast<double>(base.prefetch_bytes);
      bytes_on += static_cast<double>(tuned.prefetch_bytes);
      if (base.p99_ms > 0) p99_ratios.push_back(tuned.p99_ms / base.p99_ms);

      const auto kb = [](Bytes b) { return eval::TablePrinter::fmt(b / 1024.0); };
      table.add_row({app.spec.name, sc.name, "policy-off", eval::TablePrinter::fmt(base.p99_ms),
                     kb(base.prefetch_bytes), kb(base.wasted_bytes),
                     eval::TablePrinter::pct(base.waste_ratio), "", "", ""});
      table.add_row({"", "", "policy-on", eval::TablePrinter::fmt(tuned.p99_ms),
                     kb(tuned.prefetch_bytes), kb(tuned.wasted_bytes),
                     eval::TablePrinter::pct(tuned.waste_ratio),
                     std::to_string(tuned.policy_admitted),
                     std::to_string(tuned.policy_rejected_value),
                     std::to_string(tuned.policy_rejected_budget)});
      std::cout << "." << std::flush;
    }
  }
  std::cout << "\n\n";
  table.print(std::cout);

  const double bytes_ratio = bytes_off > 0 ? bytes_on / bytes_off : 0.0;
  double p99_ratio = 0;
  for (const double r : p99_ratios) p99_ratio += r;
  if (!p99_ratios.empty()) p99_ratio /= static_cast<double>(p99_ratios.size());
  std::cout << "\npolicy-on / policy-off: prefetch bytes "
            << eval::TablePrinter::pct(bytes_ratio) << " (gate: <= 60%), mean p99 "
            << eval::TablePrinter::pct(p99_ratio) << " (gate: <= 105%)\n";

  bool ok = true;
  if (bytes_ratio > 0.60) {
    std::cout << "FAIL: policy admitted more than 60% of baseline prefetch bytes\n";
    ok = false;
  }
  if (p99_ratio > 1.05) {
    std::cout << "FAIL: policy-on p99 regressed more than 5% over policy-off\n";
    ok = false;
  }
  std::cout << (ok ? "POLICY SMOKE PASS\n" : "POLICY SMOKE FAIL\n");
  return ok ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--policy") == 0) return run_policy_comparison();
  }
  return run_fig13();
}
