// Freshness experiment (extension of §4.3/§4.4): what the verification
// phase's expiration estimates buy.
//
// Origin content churns (every endpoint's content rotates each content_ttl of
// simulated time). A proxy whose prefetched responses never expire keeps
// serving pre-churn data; a proxy configured with the verification phase's
// churn-derived expirations misses and re-fetches fresh content instead.
//
// Method: warm the proxy, jump the simulated clock past the content TTL,
// re-open the same items, and compare every response the client actually
// received against what the origin serves *now*.
#include <iostream>

#include "eval/experiments.hpp"
#include "eval/report.hpp"
#include "eval/verification.hpp"

namespace {

using namespace appx;

struct FreshnessResult {
  std::size_t reopened = 0;
  std::size_t hits = 0;
  std::size_t stale = 0;
};

FreshnessResult run_scenario(const eval::AnalyzedApp& app, core::ProxyConfig config) {
  eval::TestbedConfig testbed_config;
  testbed_config.prefetch_enabled = true;
  testbed_config.origin_proc_jitter = 0;
  testbed_config.proxy_config = std::move(config);
  eval::Testbed bed(&app.spec, &app.analysis.signatures, testbed_config);
  const std::string user = "bench";
  apps::AppClient& client = bed.client_for(user);

  const auto run = [&](const std::string& interaction, std::size_t selection) {
    client.run_interaction(interaction, selection, [](const apps::InteractionResult&) {});
    bed.sim().run();
  };

  // Phase 1: warm. The proxy prefetches every item's detail.
  run(apps::kLaunchInteraction, 0);
  for (std::size_t s = 0; s < 5; ++s) run(app.spec.main_interaction, s);

  // Phase 2: the user walks away; origin content rotates (TTL is 30 min).
  bed.sim().run_until(bed.sim().now() + minutes(45));

  // Phase 3: re-open the same items; check freshness of each detail body.
  FreshnessResult result;
  const apps::EndpointSpec& detail = app.spec.endpoint("detail");
  apps::OriginServer probe(&app.spec);
  const auto hits_before = bed.engine().stats().cache_hits;
  for (std::size_t s = 0; s < 5; ++s) {
    const auto request = client.build_request(detail, s);
    run(app.spec.main_interaction, s);
    ++result.reopened;
    const json::Value* received = client.last_response(detail.label);
    if (received == nullptr || !request) continue;
    probe.set_epoch(static_cast<std::uint64_t>(bed.sim().now() / detail.content_ttl));
    const json::Value current = json::parse(probe.serve(*request).body);
    if (!(*received == current)) ++result.stale;
  }
  result.hits = bed.engine().stats().cache_hits - hits_before;
  return result;
}

}  // namespace

int main() {
  std::cout << "=== Freshness: never-expire vs verification-estimated expirations ===\n\n";
  const eval::AnalyzedApp app = eval::analyze_app(apps::make_wish());

  // Config A: prefetch the main-interaction signatures, never expire
  // (deployment policies carry no expiration_time).
  core::ProxyConfig never_expire = eval::deployment_config(app);
  never_expire.default_expiration = std::nullopt;

  // Config B: same policies plus the verification phase's churn estimates.
  eval::VerificationParams params;
  params.fuzz.duration = minutes(10);
  const auto outcome = eval::run_verification(app, params);
  core::ProxyConfig estimated = eval::deployment_config(app);
  std::size_t with_estimates = 0;
  for (const auto* sig : app.analysis.signatures.prefetchable()) {
    const auto it = outcome.expiry_estimates.find(sig->id);
    if (it == outcome.expiry_estimates.end()) continue;
    core::SignaturePolicy policy = *estimated.policy_for(sig->id);
    policy.expiration_time = it->second / 2;
    estimated.set_policy(policy);
    ++with_estimates;
  }

  const auto a = run_scenario(app, never_expire);
  const auto b = run_scenario(app, estimated);

  eval::TablePrinter table({"Config", "Items re-opened", "Cache hits", "Stale responses"});
  table.add_row({"never expire", std::to_string(a.reopened), std::to_string(a.hits),
                 std::to_string(a.stale)});
  table.add_row({"estimated expiry (" + std::to_string(with_estimates) + " sigs)",
                 std::to_string(b.reopened), std::to_string(b.hits), std::to_string(b.stale)});
  table.print(std::cout);
  std::cout << "\nWithout expirations the proxy keeps serving pre-churn content; with the\n"
               "verification phase's churn-derived expirations every re-opened item is\n"
               "fetched fresh — the C3 freshness control of 4.3/4.4, at the cost of the\n"
               "cache hits the first column shows.\n";
  return 0;
}
