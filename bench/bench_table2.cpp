// Table 2: Transactions of main interaction and RTT to origin servers.
//
// Enumerates, per app, the transactions its main interaction issues and the
// configured proxy<->origin RTT of each transaction's host.
#include <iostream>
#include <set>

#include "apps/catalog.hpp"
#include "eval/report.hpp"

int main() {
  using namespace appx;
  std::cout << "=== Table 2: Transactions of main interaction and RTT to origin ===\n\n";
  eval::TablePrinter table({"App", "Transaction", "Host", "RTT to Origin"});
  for (const apps::AppSpec& app : apps::make_all_apps()) {
    const apps::Interaction& main = app.interaction(app.main_interaction);
    std::set<std::string> seen;
    bool first = true;
    for (const auto& wave : main.waves) {
      for (const apps::WaveStep& step : wave) {
        if (!seen.insert(step.endpoint).second) continue;
        const apps::EndpointSpec& ep = app.endpoint(step.endpoint);
        table.add_row({first ? app.name : "", ep.label, ep.host,
                       eval::TablePrinter::fmt(to_ms(app.rtt_for_host(ep.host)), 0) + " ms"});
        first = false;
      }
    }
  }
  table.print(std::cout);
  std::cout << "\n(paper Table 2: Wish/Geek 165 ms product detail + 16/6 ms images;\n"
               " DoorDash 145 ms; Purple Ocean 230 ms + 15 ms images; Postmates 5 ms)\n";
  return 0;
}
