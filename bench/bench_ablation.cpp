// Ablations of the design choices DESIGN.md calls out:
//
//   (a) the three static-analysis extensions (§4.1): Intent map, RxAndroid
//       semantic models, alias-aware heap analysis — coverage impact;
//   (b) dynamic learning (§4.2): static analysis alone cannot produce
//       complete requests (unresolved run-time holes per signature);
//   (c) exact-match serving (R3) is what keeps hit rates meaningful: counts
//       of hits/misses/expired under the trace workload.
#include <iostream>

#include "apps/compiler.hpp"
#include "eval/experiments.hpp"
#include "eval/report.hpp"

int main() {
  using namespace appx;
  std::cout << "=== Ablation A: static-analysis extensions (coverage on all apps) ===\n\n";
  {
    struct Variant {
      const char* name;
      analysis::AnalysisOptions options;
    };
    std::vector<Variant> variants;
    variants.push_back({"full analysis", {}});
    {
      analysis::AnalysisOptions o;
      o.intent_support = false;
      variants.push_back({"no Intent map", o});
    }
    {
      analysis::AnalysisOptions o;
      o.rx_support = false;
      variants.push_back({"no Rx models", o});
    }
    {
      analysis::AnalysisOptions o;
      o.alias_analysis = false;
      variants.push_back({"no alias analysis", o});
    }
    {
      analysis::AnalysisOptions o;
      o.intent_support = false;
      o.rx_support = false;
      o.alias_analysis = false;
      variants.push_back({"none (baseline Extractocol-)", o});
    }

    eval::TablePrinter table({"Variant", "Signatures", "Prefetchable", "Dependencies",
                              "Max chain", "Unresolved holes"});
    for (const Variant& variant : variants) {
      std::size_t sigs = 0, prefetchable = 0, deps = 0, maxlen = 0, unresolved = 0;
      for (const apps::AppSpec& spec : apps::make_all_apps()) {
        const auto result = analysis::analyze(apps::compile_app(spec), variant.options);
        sigs += result.signatures.size();
        prefetchable += result.signatures.prefetchable().size();
        deps += result.signatures.edges().size();
        maxlen = std::max(maxlen, result.signatures.max_chain_length());
        unresolved += result.report.unresolved_values;
      }
      table.add_row({variant.name, std::to_string(sigs), std::to_string(prefetchable),
                     std::to_string(deps), std::to_string(maxlen),
                     std::to_string(unresolved)});
    }
    table.print(std::cout);
  }

  std::cout << "\n=== Ablation B: why dynamic learning is necessary (§4.2 / C2) ===\n\n";
  {
    // Count holes per prefetchable signature: dependency holes are filled by
    // predecessor responses, run-time holes ONLY by dynamic learning. If any
    // run-time hole exists, static analysis alone cannot prefetch (PALOMA's
    // limitation discussed in §7).
    eval::TablePrinter table({"App", "Prefetchable sigs", "w/ runtime holes",
                              "dep holes", "runtime holes"});
    for (const eval::AnalyzedApp& app : eval::analyze_all_apps()) {
      std::size_t with_runtime = 0, dep_holes = 0, runtime_holes = 0;
      const auto prefetchable = app.analysis.signatures.prefetchable();
      for (const auto* sig : prefetchable) {
        const auto rt = app.analysis.signatures.runtime_holes(sig->id);
        const auto dep = app.analysis.signatures.dependency_holes(sig->id);
        if (!rt.empty()) ++with_runtime;
        runtime_holes += rt.size();
        dep_holes += dep.size();
      }
      table.add_row({app.spec.name, std::to_string(prefetchable.size()),
                     std::to_string(with_runtime), std::to_string(dep_holes),
                     std::to_string(runtime_holes)});
    }
    table.print(std::cout);
    std::cout << "\nEvery prefetchable signature carries run-time holes (cookies, hosts,\n"
                 "versions): without dynamic learning, zero requests are reconstructible.\n";
  }

  std::cout << "\n=== Ablation C: proxy behaviour under the Wish trace workload ===\n\n";
  {
    const eval::AnalyzedApp app = eval::analyze_app(apps::make_wish());
    trace::TraceParams trace_params;
    const auto traces = trace::generate_traces(app.spec, trace_params);

    eval::TestbedConfig accel;
    accel.prefetch_enabled = true;
    accel.proxy_config = eval::deployment_config(app);
    const auto result = eval::run_trace_experiment(app, accel, traces);
    const auto& stats = result.proxy_stats;

    eval::TablePrinter table({"Metric", "Value"});
    table.add_row({"client requests", std::to_string(stats.client_requests)});
    table.add_row({"cache hits (exact match)", std::to_string(stats.cache_hits)});
    table.add_row({"expired entries", std::to_string(stats.cache_expired)});
    table.add_row({"forwarded", std::to_string(stats.forwarded)});
    table.add_row({"prefetches issued", std::to_string(stats.prefetches_issued)});
    table.add_row({"prefetch failures", std::to_string(stats.prefetch_failures)});
    table.add_row({"skipped (policy disabled)", std::to_string(stats.skipped_disabled)});
    table.add_row({"skipped (duplicate)", std::to_string(stats.skipped_duplicate)});
    table.add_row(
        {"hit rate on client requests",
         eval::TablePrinter::pct(static_cast<double>(stats.cache_hits) /
                                 static_cast<double>(std::max<std::size_t>(
                                     stats.client_requests, 1)))});
    table.print(std::cout);
  }

  std::cout << "\n=== Ablation D: prefetch scheduler (§5) — priority vs FIFO ===\n\n";
  {
    // Constrain the origin path so the prefetch burst contends with itself;
    // the §5 policy (prioritise slow-to-complete, frequently-hit signatures)
    // should land the useful prefetches earlier than plain FIFO.
    const eval::AnalyzedApp app = eval::analyze_app(apps::make_wish());
    trace::TraceParams trace_params;
    const auto traces = trace::generate_traces(app.spec, trace_params);

    eval::TablePrinter table({"Scheduler", "Main p50 (ms)", "Main p90 (ms)", "Hit rate"});
    for (const bool priority : {true, false}) {
      eval::TestbedConfig config;
      config.prefetch_enabled = true;
      config.proxy_origin_bw = mbps(25);  // force contention on CDN paths too
      config.proxy_config = eval::deployment_config(app);
      config.proxy_config.max_outstanding_prefetches = 4;  // tight window
      if (!priority) {
        config.proxy_config.scheduler_time_weight = 0;
        config.proxy_config.scheduler_hit_weight = 0;
      }
      const auto result = eval::run_trace_experiment(app, config, traces);
      const double hit_rate =
          static_cast<double>(result.proxy_stats.cache_hits) /
          static_cast<double>(std::max<std::size_t>(result.proxy_stats.client_requests, 1));
      table.add_row({priority ? "priority (time + hit rate)" : "FIFO",
                     eval::TablePrinter::fmt(result.main_latency_ms.median()),
                     eval::TablePrinter::fmt(result.main_latency_ms.percentile(0.9)),
                     eval::TablePrinter::pct(hit_rate, 1)});
      std::cout << "." << std::flush;
    }
    std::cout << "\n\n";
    table.print(std::cout);
    std::cout << "\nUnder this workload the policies tie: the queue is dominated by one\n"
                 "signature family at a time, so ordering barely matters. The priority\n"
                 "term pays off when signatures with very different response times and\n"
                 "hit rates contend for a tight outstanding window.\n";
  }
  return 0;
}
