// Figure 14: User-perceived latency of app launch, Orig vs APPx.
//
// Launch benefits less than the main interaction because launch requests are
// serial and mostly roots (not prefetchable); the win comes from the
// thumbnail fan-out being served from the proxy cache.
#include <iostream>

#include "eval/experiments.hpp"
#include "eval/report.hpp"

int main() {
  using namespace appx;
  std::cout << "=== Figure 14: app-launch latency, Orig vs APPx ===\n\n";

  eval::TablePrinter table({"App", "Setup", "Total (ms)", "Network (ms)", "Processing (ms)",
                            "p50 (ms)", "p95 (ms)", "p99 (ms)", "Reduction"});
  for (const eval::AnalyzedApp& app : eval::analyze_all_apps()) {
    eval::TestbedConfig orig;
    orig.prefetch_enabled = false;
    const auto base = eval::measure_launch(app, orig, 10);

    eval::TestbedConfig accel;
    accel.prefetch_enabled = true;
    accel.proxy_config = eval::deployment_config(app);
    const auto fast = eval::measure_launch(app, accel, 10);

    table.add_row({app.spec.name, "Orig", eval::TablePrinter::fmt(base.total_ms),
                   eval::TablePrinter::fmt(base.network_ms),
                   eval::TablePrinter::fmt(base.processing_ms),
                   eval::TablePrinter::fmt(base.p50_ms), eval::TablePrinter::fmt(base.p95_ms),
                   eval::TablePrinter::fmt(base.p99_ms), ""});
    table.add_row({"", "APPx", eval::TablePrinter::fmt(fast.total_ms),
                   eval::TablePrinter::fmt(fast.network_ms),
                   eval::TablePrinter::fmt(fast.processing_ms),
                   eval::TablePrinter::fmt(fast.p50_ms), eval::TablePrinter::fmt(fast.p95_ms),
                   eval::TablePrinter::fmt(fast.p99_ms),
                   eval::TablePrinter::pct(1.0 - fast.total_ms / base.total_ms)});
    std::cout << "." << std::flush;
  }
  std::cout << "\n\n";
  table.print(std::cout);
  std::cout << "\n(paper Fig. 14: Wish 4.3->3.6 (18%), Geek 5.1->4.5 (11%), DoorDash\n"
               " 8.6->7.2 (17%), Purple Ocean 3.3->2.8 (16%), Postmates 5.3->3.4 (36%);\n"
               " launch speedups 1.2-2.9x on the network share)\n";
  return 0;
}
