// Figure 17: trade-off between latency and data usage for Wish as the
// prefetch probability sweeps 0/25/50/75/90/100% (the proxy's cost knob, C4).
#include <iostream>

#include "eval/experiments.hpp"
#include "eval/report.hpp"

int main() {
  using namespace appx;
  std::cout << "=== Figure 17: latency vs data usage for Wish, probability sweep ===\n\n";

  const eval::AnalyzedApp app = eval::analyze_app(apps::make_wish());
  trace::TraceParams trace_params;
  const auto traces = trace::generate_traces(app.spec, trace_params);

  // Baseline (no prefetching) for normalisation.
  eval::TestbedConfig orig;
  orig.prefetch_enabled = false;
  const auto base = eval::run_trace_experiment(app, orig, traces);
  const double base_median = base.main_latency_ms.empty() ? 0 : base.main_latency_ms.median();

  eval::TablePrinter table({"Prefetch probability", "Median latency (ms)", "Data usage"});
  table.add_row({"without prefetching", eval::TablePrinter::fmt(base_median), "1.0x"});

  for (const double probability : {0.25, 0.50, 0.75, 0.90, 1.00}) {
    eval::TestbedConfig accel;
    accel.prefetch_enabled = true;
    accel.proxy_config = eval::deployment_config(app, probability);
    const auto result = eval::run_trace_experiment(app, accel, traces);
    const double median =
        result.main_latency_ms.empty() ? 0 : result.main_latency_ms.median();
    const double usage = base.origin_bytes > 0
                             ? static_cast<double>(result.origin_bytes) /
                                   static_cast<double>(base.origin_bytes)
                             : 0;
    table.add_row({eval::TablePrinter::pct(probability), eval::TablePrinter::fmt(median),
                   eval::TablePrinter::fmt(usage, 1) + "x"});
    std::cout << "." << std::flush;
  }
  std::cout << "\n\n";
  table.print(std::cout);
  std::cout << "\n(paper Fig. 17: Wish median latency falls 1881 -> 1085/947/871/792/784 ms\n"
               " as probability rises 0->100%, while data usage grows 1.0 -> 4.2x)\n";
  return 0;
}
