// bench_alloc: allocations/request and body-bytes-copied/request on the
// serving data plane (DESIGN.md §5h).
//
// Links the counting operator new/delete (obs/hook/alloc_hook.cpp), runs the
// component pipeline a live connection runs per request — push-parse → arena
// request view → materialize → cache key → cache lookup → head render →
// slab handoff — and reports per-request heap traffic for the steady-state
// hit path and the miss-side extra work (upstream response parse + adopt).
//
// Output is a JSON object on stdout (merged into BENCH_micro.json by hand
// when re-recording numbers). With `--budget <file.json>` it doubles as the
// CI smoke gate: exits nonzero when the hit path exceeds the checked-in
// allocation budget or body bytes are copied between cache and socket.
//
// Usage:  ./build/bench/bench_alloc [--budget bench/alloc_budget.json]
#include <cstdio>
#include <iostream>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "core/cache.hpp"
#include "http/message.hpp"
#include "http/view.hpp"
#include "json/json.hpp"
#include "net/http_io.hpp"
#include "obs/alloc.hpp"
#include "util/arena.hpp"
#include "util/byte_io.hpp"

namespace {

using namespace appx;

constexpr int kWarmup = 16;
constexpr int kIters = 1024;

std::string wire_request() {
  http::Request req;
  req.method = "POST";
  req.uri = http::Uri::parse("https://api.wish.example/product/get");
  req.uri.add_query_param("offset", "0");
  req.uri.add_query_param("count", "30");
  req.headers.set("Cookie", "session=abcdef0123456789");
  req.headers.set("User-Agent", "Mozilla/5.0 (Linux; Android 9)");
  req.headers.set("X-Appx-User", "demo-user");
  req.set_form_fields({{"_client", "android"}, {"_ver", "4.13.0"}, {"pid", "item-17"}});
  return req.serialize();
}

std::string wire_response(std::size_t body_bytes) {
  http::Response resp;
  resp.status = 200;
  resp.headers.set("Content-Type", "application/json");
  resp.headers.set("Server", "origin/1.0");
  resp.body = std::string(body_bytes, 'j');
  return resp.serialize();
}

struct PathReport {
  double allocations = 0;  // operator new calls per request
  double heap_bytes = 0;   // bytes requested per request
  double body_bytes_copied = 0;
  bool zero_copy = false;  // served bytes ARE the cached bytes
};

// Steady-state hit: every reusable buffer warm, cached response resident.
PathReport measure_hit() {
  net::HttpParser parser;
  util::Arena arena;
  http::Request scratch;
  std::string key;
  std::string head;
  core::PrefetchCache cache;
  const std::vector<std::string> ignored;
  const std::string wire = wire_request();
  constexpr std::size_t kBodyBytes = 4096;

  {
    http::Response cached;
    cached.status = 200;
    cached.headers.set("Content-Type", "application/json");
    cached.body = std::string(kBodyBytes, 'j');
    core::PrefetchCache::Entry entry;
    entry.set_response(std::move(cached));
    util::Arena seed;
    http::materialize(http::parse_request_view(wire, seed), scratch);
    cache.put(scratch.cache_key(ignored), std::move(entry));
  }

  const char* cached_data = cache.get(key = scratch.cache_key(ignored), 0)->body.data();
  bool zero_copy = true;
  const auto pass = [&] {
    parser.append(wire.data(), wire.size());
    const auto message = parser.next_message();
    parser.pin();
    arena.reset();
    const http::RequestView view = http::parse_request_view(*message, arena);
    http::materialize(view, scratch);
    scratch.cache_key_into(key, ignored);
    const std::shared_ptr<const http::Response> response = cache.get(key, 0);
    head.clear();
    response->serialize_head_into(head, "X-Appx-Cache: hit");
    const http::BodySlab served = response->body;  // the out-queue's hold
    zero_copy = zero_copy && served.data() == cached_data;
    parser.unpin();
  };

  for (int i = 0; i < kWarmup; ++i) pass();
  const obs::AllocCounters before = obs::thread_alloc_counters();
  for (int i = 0; i < kIters; ++i) pass();
  const obs::AllocCounters after = obs::thread_alloc_counters();

  PathReport report;
  report.allocations = double(after.allocations - before.allocations) / kIters;
  report.heap_bytes = double(after.bytes - before.bytes) / kIters;
  report.body_bytes_copied = 0;  // proven by pointer identity below
  report.zero_copy = zero_copy;
  return report;
}

// Miss-side extra work: parse the upstream response off the pooled
// connection's parser and adopt it for cache + client. The body leaves the
// parser buffer exactly once (string adoption into the slab).
PathReport measure_miss_extra() {
  net::HttpParser parser;
  std::string head;
  constexpr std::size_t kBodyBytes = 4096;
  const std::string wire = wire_response(kBodyBytes);

  const auto pass = [&] {
    parser.append(wire.data(), wire.size());
    const auto message = parser.next_message();
    http::Response parsed = http::Response::parse(*message);
    const auto shared = std::make_shared<const http::Response>(std::move(parsed));
    head.clear();
    shared->serialize_head_into(head, "X-Appx-Cache: miss");
    const http::BodySlab served = shared->body;
  };

  for (int i = 0; i < kWarmup; ++i) pass();
  const obs::AllocCounters before = obs::thread_alloc_counters();
  for (int i = 0; i < kIters; ++i) pass();
  const obs::AllocCounters after = obs::thread_alloc_counters();

  PathReport report;
  report.allocations = double(after.allocations - before.allocations) / kIters;
  report.heap_bytes = double(after.bytes - before.bytes) / kIters;
  report.body_bytes_copied = kBodyBytes;  // the single parser→slab adoption copy
  report.zero_copy = false;
  return report;
}

void print_path(const char* name, const PathReport& r, bool last) {
  std::printf("  \"%s\": {\n", name);
  std::printf("    \"allocations_per_request\": %.2f,\n", r.allocations);
  std::printf("    \"heap_bytes_per_request\": %.1f,\n", r.heap_bytes);
  std::printf("    \"body_bytes_copied_per_request\": %.0f,\n", r.body_bytes_copied);
  std::printf("    \"zero_copy_verified\": %s\n", r.zero_copy ? "true" : "false");
  std::printf("  }%s\n", last ? "" : ",");
}

}  // namespace

int main(int argc, char** argv) {
  if (!obs::alloc_counting_active()) {
    std::fprintf(stderr,
                 "bench_alloc: allocation hook inactive (sanitizer build?) — "
                 "nothing to measure\n");
    return 1;
  }

  const PathReport hit = measure_hit();
  const PathReport miss = measure_miss_extra();

  std::printf("{\n");
  print_path("hit", hit, false);
  print_path("miss_extra", miss, false);
  // The numbers this PR replaced (recorded before the arena/slab/view data
  // plane landed), for the reduction claim in README.md.
  std::printf(
      "  \"before\": {\"hit_allocations_per_request\": 58.0, "
      "\"hit_heap_bytes_per_request\": 4663.0, "
      "\"hit_body_copied\": true, "
      "\"miss_extra_allocations_per_request\": 14.0}\n");
  std::printf("}\n");

  for (int i = 1; i < argc; ++i) {
    if (std::string_view(argv[i]) == "--budget" && i + 1 < argc) {
      const std::vector<std::uint8_t> raw = read_file(argv[i + 1]);
      const json::Value budget =
          json::parse(std::string_view(reinterpret_cast<const char*>(raw.data()), raw.size()));
      const double max_allocs = budget.at("hit_allocations_per_request").as_double();
      if (hit.allocations > max_allocs) {
        std::fprintf(stderr, "bench_alloc: hit path allocates %.2f/request, budget %.2f\n",
                     hit.allocations, max_allocs);
        return 1;
      }
      if (!hit.zero_copy) {
        std::fprintf(stderr, "bench_alloc: hit body was copied between cache and socket\n");
        return 1;
      }
      std::fprintf(stderr, "bench_alloc: within budget (%.2f <= %.2f allocations/request)\n",
                   hit.allocations, max_allocs);
    }
  }
  return 0;
}
