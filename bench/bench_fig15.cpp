// Figure 15: 90th-percentile user-perceived latency of the main interaction
// under the user-study workload, varying the proxy<->server RTT between 50,
// 100 and 150 ms (i.e. moving the proxy along the client-server path).
#include <iostream>

#include "eval/experiments.hpp"
#include "eval/report.hpp"

int main() {
  using namespace appx;
  std::cout << "=== Figure 15: 90%-tile main-interaction latency vs proxy-server RTT ===\n\n";

  const Duration rtts[] = {milliseconds(50), milliseconds(100), milliseconds(150)};
  trace::TraceParams trace_params;  // 30 users x 3 min

  eval::TablePrinter table(
      {"App", "RTT", "Orig p90 (ms)", "APPx p90 (ms)", "Reduction"});
  for (const eval::AnalyzedApp& app : eval::analyze_all_apps()) {
    const auto traces = trace::generate_traces(app.spec, trace_params);
    bool first = true;
    for (const Duration rtt : rtts) {
      eval::TestbedConfig orig;
      orig.prefetch_enabled = false;
      orig.proxy_origin_rtt_override = rtt;
      const auto base = eval::run_trace_experiment(app, orig, traces);

      eval::TestbedConfig accel;
      accel.prefetch_enabled = true;
      accel.proxy_origin_rtt_override = rtt;
      accel.proxy_config = eval::deployment_config(app);
      const auto fast = eval::run_trace_experiment(app, accel, traces);

      const double base_p90 =
          base.main_latency_ms.empty() ? 0 : base.main_latency_ms.percentile(0.9);
      const double fast_p90 =
          fast.main_latency_ms.empty() ? 0 : fast.main_latency_ms.percentile(0.9);
      table.add_row({first ? app.spec.name : "",
                     eval::TablePrinter::fmt(to_ms(rtt), 0) + " ms",
                     eval::TablePrinter::fmt(base_p90), eval::TablePrinter::fmt(fast_p90),
                     base_p90 > 0 ? eval::TablePrinter::pct(1.0 - fast_p90 / base_p90) : "-"});
      first = false;
      std::cout << "." << std::flush;
    }
  }
  std::cout << "\n\n";
  table.print(std::cout);
  std::cout << "\n(paper Fig. 15: reductions grow with proxy-server RTT — Wish 36/54/55%,\n"
               " Geek 37/56/64%, DoorDash 23/31/43%, Purple Ocean 19/41/51%,\n"
               " Postmates 14/31/28%)\n";
  return 0;
}
