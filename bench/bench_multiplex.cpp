// Multiplexed edge cell (extension of the paper's conclusion): N user
// sessions run CONCURRENTLY through one proxy sharing one 55 ms / 25 Mbps
// access link. As the cell fills, everyone's latency grows, but the
// prefetching proxy both stays ahead and keeps its edge because cache hits
// skip the contended proxy<->origin legs entirely.
#include <iostream>

#include "eval/experiments.hpp"
#include "eval/report.hpp"

int main() {
  using namespace appx;
  std::cout << "=== Multiplexing: concurrent sessions on one edge cell (Wish) ===\n\n";

  const eval::AnalyzedApp app = eval::analyze_app(apps::make_wish());
  trace::TraceParams trace_params;
  const auto results =
      eval::run_multiplex_experiment(app, {1, 4, 8, 16}, trace_params);

  eval::TablePrinter table({"Concurrent users", "Orig p50 (ms)", "APPx p50 (ms)",
                            "Orig p90 (ms)", "APPx p90 (ms)", "Median cut"});
  for (const eval::MultiplexResult& row : results) {
    table.add_row({std::to_string(row.users), eval::TablePrinter::fmt(row.orig_median_ms),
                   eval::TablePrinter::fmt(row.appx_median_ms),
                   eval::TablePrinter::fmt(row.orig_p90_ms),
                   eval::TablePrinter::fmt(row.appx_p90_ms),
                   row.orig_median_ms > 0
                       ? eval::TablePrinter::pct(1.0 - row.appx_median_ms / row.orig_median_ms)
                       : "-"});
    std::cout << "." << std::flush;
  }
  std::cout << "\n\n";
  table.print(std::cout);
  std::cout << "\n(the paper's conclusion targets 'lightly multiplexed environments, such\n"
               " as the mobile edge cloud': the relative win persists under moderate\n"
               " multiplexing, while heavy cells are bottlenecked by the shared access\n"
               " link that prefetching cannot bypass)\n";
  return 0;
}
