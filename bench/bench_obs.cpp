// Observability microbenchmarks (google-benchmark): the metrics hot path must
// be cheap enough to leave on in production — counter increments and histogram
// records target < 50 ns — plus the cost of the export-side operations
// (quantile queries, registry name lookup) that run off the hot path.
#include <benchmark/benchmark.h>

#include <thread>
#include <vector>

#include "obs/metrics.hpp"

namespace {

using namespace appx;

void BM_CounterInc(benchmark::State& state) {
  obs::Counter counter;
  for (auto _ : state) {
    counter.inc();
  }
  benchmark::DoNotOptimize(counter.value());
}
BENCHMARK(BM_CounterInc);

void BM_CounterIncThreaded(benchmark::State& state) {
  // Striped cells: concurrent increments from distinct threads should not
  // share a cache line, so per-op cost stays flat as threads are added.
  static obs::Counter counter;
  for (auto _ : state) {
    counter.inc();
  }
  if (state.thread_index() == 0) benchmark::DoNotOptimize(counter.value());
}
BENCHMARK(BM_CounterIncThreaded)->Threads(4);

void BM_GaugeSet(benchmark::State& state) {
  obs::Gauge gauge;
  std::int64_t v = 0;
  for (auto _ : state) {
    gauge.set(++v);
  }
  benchmark::DoNotOptimize(gauge.value());
}
BENCHMARK(BM_GaugeSet);

void BM_HistogramRecord(benchmark::State& state) {
  // Latency-shaped values spanning several octaves; record() is bit ops plus
  // four relaxed atomic RMWs regardless of the value.
  obs::Histogram hist;
  std::int64_t v = 1;
  for (auto _ : state) {
    hist.record(v);
    v = (v * 31 + 7) & 0xFFFFF;  // pseudo-random 0..1M microseconds
  }
  benchmark::DoNotOptimize(hist.count());
}
BENCHMARK(BM_HistogramRecord);

void BM_HistogramRecordThreaded(benchmark::State& state) {
  static obs::Histogram hist;
  std::int64_t v = 1 + state.thread_index();
  for (auto _ : state) {
    hist.record(v);
    v = (v * 31 + 7) & 0xFFFFF;
  }
  if (state.thread_index() == 0) benchmark::DoNotOptimize(hist.count());
}
BENCHMARK(BM_HistogramRecordThreaded)->Threads(4);

void BM_HistogramQuantile(benchmark::State& state) {
  // Export-side: one quantile query walks the 960 bucket array once.
  obs::Histogram hist;
  std::int64_t v = 1;
  for (int i = 0; i < 100000; ++i) {
    hist.record(v);
    v = (v * 31 + 7) & 0xFFFFF;
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(hist.quantile(0.99));
  }
}
BENCHMARK(BM_HistogramQuantile);

void BM_RegistryCounterLookup(benchmark::State& state) {
  // The anti-pattern the API discourages: resolving by name on every
  // increment pays a mutex + map lookup. Callers cache the pointer instead.
  obs::MetricsRegistry registry;
  registry.counter("appx_proxy_client_requests_total");
  for (auto _ : state) {
    registry.counter("appx_proxy_client_requests_total").inc();
  }
}
BENCHMARK(BM_RegistryCounterLookup);

void BM_RegistryPrometheusExport(benchmark::State& state) {
  obs::MetricsRegistry registry;
  for (int i = 0; i < 20; ++i) {
    registry.counter(obs::labeled("appx_bench_counter_total",
                                  {{"idx", std::to_string(i)}}));
    auto& hist = registry.histogram(
        obs::labeled("appx_bench_latency_us", {{"idx", std::to_string(i)}}));
    for (std::int64_t v = 1; v < 10000; v *= 3) hist.record(v);
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(registry.to_prometheus());
  }
}
BENCHMARK(BM_RegistryPrometheusExport)->Unit(benchmark::kMicrosecond);

}  // namespace

BENCHMARK_MAIN();
