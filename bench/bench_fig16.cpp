// Figure 16: CDF of user-perceived latency and normalised data usage under
// the user-study workload, for proxy-server RTTs of 50/100/150 ms.
//
// Prints median/percentile latency rows for the CDF and the data-usage
// ratios (APPx origin traffic / Orig origin traffic).
#include <iostream>

#include "eval/experiments.hpp"
#include "eval/report.hpp"

int main() {
  using namespace appx;
  std::cout << "=== Figure 16: latency CDF + normalised data usage ===\n\n";

  const Duration rtts[] = {milliseconds(50), milliseconds(100), milliseconds(150)};
  trace::TraceParams trace_params;

  eval::TablePrinter table({"App", "RTT", "Setup", "p10", "p25", "p50", "p75", "p90",
                            "Median cut", "Data usage"});
  for (const eval::AnalyzedApp& app : eval::analyze_all_apps()) {
    const auto traces = trace::generate_traces(app.spec, trace_params);
    bool first_row = true;
    for (const Duration rtt : rtts) {
      eval::TestbedConfig orig;
      orig.prefetch_enabled = false;
      orig.proxy_origin_rtt_override = rtt;
      const auto base = eval::run_trace_experiment(app, orig, traces);

      eval::TestbedConfig accel;
      accel.prefetch_enabled = true;
      accel.proxy_origin_rtt_override = rtt;
      accel.proxy_config = eval::deployment_config(app);
      const auto fast = eval::run_trace_experiment(app, accel, traces);

      const auto percentiles = [](const SampleSet& s, double q) {
        return s.empty() ? 0.0 : s.percentile(q);
      };
      const auto row = [&](const char* label, const eval::TraceExperimentResult& r,
                           const std::string& median_cut, const std::string& usage) {
        table.add_row({first_row ? app.spec.name : "",
                       eval::TablePrinter::fmt(to_ms(rtt), 0), label,
                       eval::TablePrinter::fmt(percentiles(r.main_latency_ms, 0.10)),
                       eval::TablePrinter::fmt(percentiles(r.main_latency_ms, 0.25)),
                       eval::TablePrinter::fmt(percentiles(r.main_latency_ms, 0.50)),
                       eval::TablePrinter::fmt(percentiles(r.main_latency_ms, 0.75)),
                       eval::TablePrinter::fmt(percentiles(r.main_latency_ms, 0.90)),
                       median_cut, usage});
        first_row = false;
      };

      const double base_median = percentiles(base.main_latency_ms, 0.5);
      const double fast_median = percentiles(fast.main_latency_ms, 0.5);
      const double usage_ratio = base.origin_bytes > 0
                                     ? static_cast<double>(fast.origin_bytes) /
                                           static_cast<double>(base.origin_bytes)
                                     : 0.0;
      row("Orig", base, "", "1.00x");
      row("APPx", fast,
          base_median > 0 ? eval::TablePrinter::pct(1.0 - fast_median / base_median) +
                                " (" + eval::TablePrinter::fmt(base_median - fast_median, 0) +
                                " ms)"
                          : "-",
          eval::TablePrinter::fmt(usage_ratio, 2) + "x");
      std::cout << "." << std::flush;
    }
  }
  std::cout << "\n\n";
  table.print(std::cout);
  std::cout << "\n(paper Fig. 16: median reductions 17-64% (252-1471 ms), larger when the\n"
               " proxy sits closer to the client; data usage 1.08x-4.17x, highest for the\n"
               " image-heavy shopping apps, lowest for Postmates)\n";
  return 0;
}
