// Table 1: Description of apps and main interactions.
#include <iostream>

#include "apps/catalog.hpp"
#include "eval/report.hpp"

int main() {
  using namespace appx;
  std::cout << "=== Table 1: Description of apps and main interactions ===\n\n";
  eval::TablePrinter table({"App", "Category", "Main Interaction"});
  for (const apps::AppSpec& app : apps::make_all_apps()) {
    table.add_row({app.name, app.category, app.main_interaction_desc});
  }
  table.print(std::cout);
  std::cout << "\n(paper Table 1: Wish/Geek shopping item detail; DoorDash/Postmates\n"
               " restaurant info; Purple Ocean advisor page)\n";
  return 0;
}
