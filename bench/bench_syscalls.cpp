// bench_syscalls: syscalls/request on the serving data plane's warm-hit
// path, per event-loop backend (DESIGN.md §5l).
//
// Runs the full live stack in-process — wish origin, sharded engine,
// LiveProxyServer on ONE loop thread — primes the prefetch cache exactly the
// way the end-to-end tests do (feed → first detail → drain_prefetches), then
// drives C concurrent keep-alive clients through repeated cache-hit detail
// requests and diffs the net::sys syscall counters across the measured
// window. The counters cover only the serving plane (reactor waits,
// epoll_ctl, conn recv/sendmsg, accept4, eventfd wakes, io_uring
// enter/register); blocking client and upstream sockets are deliberately
// uncounted — see src/net/syscount.hpp.
//
// One section per backend: epoll always, uring when the kernel supports it.
// Output is a JSON object on stdout (recorded in BENCH_micro.json under
// "syscall_plane"). With `--budget <file.json>` it doubles as the CI gate:
// exits nonzero when a backend exceeds its absolute syscalls/request budget
// or uring fails the required relative drop vs epoll.
//
// Usage: bench_syscalls [--conns N] [--requests N] [--budget bench/syscall_budget.json]
#include <cstdio>
#include <memory>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "analysis/analyzer.hpp"
#include "apps/catalog.hpp"
#include "apps/compiler.hpp"
#include "apps/server.hpp"
#include "core/sharded_proxy.hpp"
#include "json/json.hpp"
#include "net/event_loop.hpp"
#include "net/http_io.hpp"
#include "net/servers.hpp"
#include "net/socket.hpp"
#include "net/syscount.hpp"
#include "util/byte_io.hpp"
#include "util/error.hpp"

namespace {

using namespace appx;

constexpr const char* kUser = "bench";

http::Request feed_request(const apps::AppSpec& spec) {
  http::Request req;
  req.method = "POST";
  req.uri = http::Uri::parse("https://" + spec.endpoint("feed").host + "/api/get-feed");
  req.uri.add_query_param("offset", "0");
  req.uri.add_query_param("count", "30");
  req.headers.set("Cookie", "c0");
  req.headers.set("User-Agent", "ua");
  req.set_form_fields({{"_client", "android"}, {"_ver", "4.13.0"}});
  return req;
}

// The detail request the app would issue for feed item `index` (same
// construction as the end-to-end tests: dependency fields resolved from the
// feed body).
http::Request detail_request(const apps::AppSpec& spec, apps::OriginServer& origin,
                             std::size_t index) {
  http::Request req;
  req.method = "POST";
  req.uri = http::Uri::parse("https://" + spec.endpoint("detail").host + "/product/get");
  req.headers.set("Cookie", "c0");
  req.headers.set("User-Agent", "ua");
  const auto feed_body = json::parse(origin.serve(feed_request(spec)).body);
  http::FormFields fields;
  const apps::EndpointSpec& detail = spec.endpoint("detail");
  for (const apps::FieldSpec& f : detail.fields) {
    if (f.loc != core::FieldLocation::kBody || f.conditional) continue;
    if (f.value.kind == apps::ValueSpec::Kind::kDep) {
      std::string path = f.value.dep_path;
      const auto star = path.find("[*]");
      if (star != std::string::npos) path.replace(star, 3, "[" + std::to_string(index) + "]");
      fields.emplace_back(f.name,
                          json::Path(path).resolve_first(feed_body)->scalar_to_string());
    } else if (f.value.kind == apps::ValueSpec::Kind::kEnv) {
      fields.emplace_back(f.name, spec.env_defaults.at(f.value.text));
    } else {
      fields.emplace_back(f.name, f.value.text);
    }
  }
  req.set_form_fields(fields);
  return req;
}

// Minimal blocking keep-alive client (its own syscalls are uncounted).
class Client {
 public:
  explicit Client(std::uint16_t port)
      : stream_(net::TcpStream::connect("127.0.0.1", port)), reader_(&stream_) {}

  http::Response send(http::Request req) {
    req.headers.set("X-Appx-User", kUser);
    net::write_request(stream_, req);
    auto response = reader_.read_response();
    if (!response) throw Error("bench_syscalls: server closed connection");
    return std::move(*response);
  }

 private:
  net::TcpStream stream_;
  net::HttpReader reader_;
};

struct BackendResult {
  std::string backend;
  std::size_t requests = 0;
  std::size_t hits = 0;
  std::uint64_t origin_requests = 0;  // in-window origin traffic (should be ~0)
  net::sys::Counters delta;
  double per_request = 0;
};

BackendResult measure(const std::string& backend, std::size_t conns,
                      std::size_t requests_per_conn) {
  const apps::AppSpec spec = apps::make_wish();
  apps::OriginServer origin(&spec);
  const analysis::AnalysisResult analysis = analysis::analyze(apps::compile_app(spec));
  core::ProxyConfig config;
  config.default_expiration = minutes(30);
  core::EngineOptions engine_options;
  engine_options.seed = 3;
  engine_options.loop_threads = 1;
  engine_options.io_backend = backend;
  core::ShardedProxyEngine engine(&analysis.signatures, &config, engine_options);
  net::LiveOriginServer upstream(&origin, 0, /*loop_threads=*/1, backend);
  net::LiveProxyServer::UpstreamMap upstreams;
  for (const apps::EndpointSpec& ep : spec.endpoints) upstreams[ep.host] = upstream.port();
  net::LiveProxyServer proxy(&engine, std::move(upstreams), 0, engine_options);

  // Prime: the feed teaches the item list, the first detail teaches the
  // run-time values, and drain waits for the sibling prefetches to land.
  {
    Client primer(proxy.port());
    if (!primer.send(feed_request(spec)).ok()) throw Error("bench_syscalls: feed failed");
    if (!primer.send(detail_request(spec, origin, 0)).ok()) {
      throw Error("bench_syscalls: prime detail failed");
    }
    proxy.drain_prefetches();
  }

  const http::Request hit_req = detail_request(spec, origin, 1);

  // Warm every connection first (connect, accept, first exchange) so the
  // measured window holds only steady-state keep-alive traffic.
  std::vector<std::unique_ptr<Client>> clients;
  clients.reserve(conns);
  for (std::size_t c = 0; c < conns; ++c) {
    clients.push_back(std::make_unique<Client>(proxy.port()));
    if (clients.back()->send(hit_req).headers.get("X-Appx-Cache").value_or("") != "hit") {
      throw Error("bench_syscalls: warmup request was not a cache hit");
    }
  }

  const std::uint64_t origin_before = upstream.requests_served();
  const net::sys::Counters before = net::sys::snapshot();
  std::vector<std::thread> threads;
  std::vector<std::size_t> hits(conns, 0);
  threads.reserve(conns);
  for (std::size_t c = 0; c < conns; ++c) {
    threads.emplace_back([&, c] {
      for (std::size_t r = 0; r < requests_per_conn; ++r) {
        const http::Response response = clients[c]->send(hit_req);
        if (response.headers.get("X-Appx-Cache").value_or("") == "hit") ++hits[c];
      }
    });
  }
  for (std::thread& t : threads) t.join();
  const net::sys::Counters after = net::sys::snapshot();
  const std::uint64_t origin_after = upstream.requests_served();

  BackendResult result;
  result.backend = backend;
  result.requests = conns * requests_per_conn;
  for (const std::size_t h : hits) result.hits += h;
  result.origin_requests = origin_after - origin_before;
  result.delta = after - before;
  result.per_request =
      static_cast<double>(result.delta.total()) / static_cast<double>(result.requests);
  return result;
}

void print_result(const BackendResult& r, bool last) {
  std::printf("    \"%s\": {\n", r.backend.c_str());
  std::printf("      \"syscalls_per_request\": %.2f,\n", r.per_request);
  std::printf("      \"requests\": %zu, \"hits\": %zu, \"origin_requests_in_window\": %llu,\n",
              r.requests, r.hits, static_cast<unsigned long long>(r.origin_requests));
  std::printf("      \"breakdown_total\": {\"wait\": %llu, \"ctl\": %llu, \"read\": %llu, "
              "\"write\": %llu, \"accept\": %llu, \"wake\": %llu, \"enter\": %llu, "
              "\"register\": %llu}\n",
              static_cast<unsigned long long>(r.delta.wait),
              static_cast<unsigned long long>(r.delta.ctl),
              static_cast<unsigned long long>(r.delta.read),
              static_cast<unsigned long long>(r.delta.write),
              static_cast<unsigned long long>(r.delta.accept),
              static_cast<unsigned long long>(r.delta.wake),
              static_cast<unsigned long long>(r.delta.enter),
              static_cast<unsigned long long>(r.delta.reg));
  std::printf("    }%s\n", last ? "" : ",");
}

}  // namespace

int main(int argc, char** argv) {
  std::size_t conns = 8;
  std::size_t requests_per_conn = 250;
  const char* budget_path = nullptr;
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    const auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "bench_syscalls: missing value for %s\n", argv[i]);
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--conns") conns = std::stoul(next());
    else if (arg == "--requests") requests_per_conn = std::stoul(next());
    else if (arg == "--budget") budget_path = next();
    else {
      std::fprintf(stderr, "bench_syscalls: unknown argument %s\n", argv[i]);
      return 2;
    }
  }

  const BackendResult epoll = measure("epoll", conns, requests_per_conn);
  const bool uring_available = appx::net::uring_supported();
  BackendResult uring;
  if (uring_available) uring = measure("uring", conns, requests_per_conn);

  const double drop =
      uring_available && epoll.per_request > 0
          ? 1.0 - uring.per_request / epoll.per_request
          : 0.0;

  std::printf("{\n  \"syscall_plane\": {\n");
  std::printf("    \"conns\": %zu, \"requests_per_conn\": %zu,\n", conns, requests_per_conn);
  std::printf("    \"note\": \"server-side syscalls per warm-hit request, one loop thread; "
              "in-code counters (src/net/syscount.hpp), client/upstream sockets "
              "uncounted\",\n");
  print_result(epoll, false);
  if (uring_available) {
    print_result(uring, false);
    std::printf("    \"uring_drop_vs_epoll\": %.3f\n", drop);
  } else {
    std::printf("    \"uring\": null\n");
  }
  std::printf("  }\n}\n");

  if (budget_path != nullptr) {
    const std::vector<std::uint8_t> raw = read_file(budget_path);
    const json::Value budget =
        json::parse(std::string_view(reinterpret_cast<const char*>(raw.data()), raw.size()));
    const double epoll_max = budget.at("epoll_syscalls_per_request").as_double();
    if (epoll.per_request > epoll_max) {
      std::fprintf(stderr, "bench_syscalls: epoll warm-hit path costs %.2f syscalls/request, "
                           "budget %.2f\n",
                   epoll.per_request, epoll_max);
      return 1;
    }
    if (!uring_available) {
      std::fprintf(stderr, "bench_syscalls: within budget (epoll %.2f <= %.2f); uring gates "
                           "skipped — kernel lacks io_uring support\n",
                   epoll.per_request, epoll_max);
      return 0;
    }
    const double uring_max = budget.at("uring_syscalls_per_request").as_double();
    const double min_drop = budget.at("uring_min_drop_vs_epoll").as_double();
    if (uring.per_request > uring_max) {
      std::fprintf(stderr, "bench_syscalls: uring warm-hit path costs %.2f syscalls/request, "
                           "budget %.2f\n",
                   uring.per_request, uring_max);
      return 1;
    }
    if (drop < min_drop) {
      std::fprintf(stderr, "bench_syscalls: uring drops only %.0f%% of epoll's "
                           "syscalls/request (%.2f -> %.2f); budget requires >= %.0f%%\n",
                   drop * 100, epoll.per_request, uring.per_request, min_drop * 100);
      return 1;
    }
    std::fprintf(stderr, "bench_syscalls: within budget (epoll %.2f <= %.2f, uring %.2f <= "
                         "%.2f, drop %.0f%% >= %.0f%%)\n",
                 epoll.per_request, epoll_max, uring.per_request, uring_max, drop * 100,
                 min_drop * 100);
  }
  return 0;
}
