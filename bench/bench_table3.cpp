// Table 3: Signatures and dependency relationships identified for commercial
// apps — APPx static analysis vs. 1 h of Monkey UI fuzzing vs. the 30-user
// study traces.
#include <iostream>

#include "eval/experiments.hpp"
#include "eval/report.hpp"

int main() {
  using namespace appx;
  std::cout << "=== Table 3: Signatures and dependency relationships ===\n"
               "    (APPx / Auto UI fuzzing / User study)\n\n";

  fuzz::FuzzParams fuzz_params;  // 1 h at 500 ms, as in the paper
  trace::TraceParams trace_params;  // 30 users x 3 min

  eval::TablePrinter table({"App", "Unique sigs", "Prefetchable", "Dependencies", "Max len"});
  const auto cell = [](std::size_t a, std::size_t f, std::size_t u) {
    return std::to_string(a) + " / " + std::to_string(f) + " / " + std::to_string(u);
  };

  for (const eval::AnalyzedApp& app : eval::analyze_all_apps()) {
    const eval::CoverageRow row = eval::run_coverage_experiment(app, fuzz_params, trace_params);
    table.add_row({row.app,
                   cell(row.appx.total, row.fuzz.total, row.user.total),
                   cell(row.appx.prefetchable, row.fuzz.prefetchable, row.user.prefetchable),
                   cell(row.appx.dependencies, row.fuzz.dependencies, row.user.dependencies),
                   cell(row.appx.max_chain, row.fuzz.max_chain, row.user.max_chain)});
    std::cout << "." << std::flush;
  }
  std::cout << "\n\n";
  table.print(std::cout);
  std::cout <<
      "\n(paper Table 3:\n"
      "  Wish         120/47/16  33/8/7    794/78/49  12/5/5\n"
      "  Geek         118/51/31  45/11/13  388/39/31  10/4/4\n"
      "  DoorDash      63/29/21  31/10/10  160/30/36   7/3/5\n"
      "  Purple Ocean 109/25/10  37/4/4     72/4/6     4/2/2\n"
      "  Postmates     83/18/14  35/6/8    272/10/16  15/2/3 )\n";
  return 0;
}
