// Connection-scaling benchmark for the event-driven network runtime
// (DESIGN.md §5g): C concurrent keep-alive HTTP clients against
//
//   * the epoll reactor LiveOriginServer pinned to ONE loop thread, and
//   * a thread-per-connection replica of the seed runtime (blocking reads,
//     one std::thread per accepted connection, origin behind a mutex),
//
// reporting requests served, connections per server thread, and client
// latency percentiles (p50/p95/p99). The reactor carries all C connections
// on a single thread; the seed model needs C. A second section drives the
// full LiveProxyServer through sequential unique cache misses and reports
// the upstream keep-alive pool's reuse fraction (seed behavior: a fresh TCP
// connect per fetch, reuse 0).
//
// Emits one JSON object on stdout; results are recorded in BENCH_micro.json
// under "connscale".
//
// Usage: bench_connscale [connections] [requests-per-connection]
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "analysis/analyzer.hpp"
#include "apps/catalog.hpp"
#include "apps/compiler.hpp"
#include "apps/server.hpp"
#include "core/sharded_proxy.hpp"
#include "net/http_io.hpp"
#include "net/servers.hpp"
#include "net/socket.hpp"
#include "util/error.hpp"

namespace {

using namespace appx;

// The seed's blocking runtime, reproduced for comparison: one thread per
// accepted connection, blocking HttpReader, origin serialized by a mutex.
class ThreadPerConnOrigin {
 public:
  explicit ThreadPerConnOrigin(apps::OriginServer* origin) : origin_(origin), listener_(0) {
    acceptor_ = std::thread([this] {
      while (true) {
        net::TcpStream stream = listener_.accept();
        if (!stream.valid()) return;
        const std::lock_guard<std::mutex> lock(mutex_);
        threads_.emplace_back([this](net::TcpStream s) { serve(std::move(s)); },
                              std::move(stream));
      }
    });
  }
  ~ThreadPerConnOrigin() {
    listener_.close();
    if (acceptor_.joinable()) acceptor_.join();
    std::vector<std::thread> threads;
    {
      const std::lock_guard<std::mutex> lock(mutex_);
      threads.swap(threads_);
    }
    for (std::thread& t : threads) t.join();
  }
  std::uint16_t port() const { return listener_.port(); }

 private:
  void serve(net::TcpStream stream) {
    try {
      net::HttpReader reader(&stream);
      while (auto request = reader.read_request()) {
        http::Response response;
        {
          const std::lock_guard<std::mutex> lock(origin_mutex_);
          response = origin_->serve(*request);
        }
        net::write_response(stream, response);
      }
    } catch (const Error&) {
    }
  }

  apps::OriginServer* origin_;
  net::TcpListener listener_;
  std::thread acceptor_;
  std::mutex mutex_;
  std::mutex origin_mutex_;
  std::vector<std::thread> threads_;
};

http::Request feed_request(const apps::AppSpec& spec) {
  http::Request req;
  req.method = "POST";
  req.uri = http::Uri::parse("https://" + spec.endpoint("feed").host + "/api/get-feed");
  req.uri.add_query_param("offset", "0");
  req.uri.add_query_param("count", "30");
  req.headers.set("Cookie", "c");
  req.headers.set("User-Agent", "bench");
  req.set_form_fields({{"_client", "android"}, {"_ver", "4.13.0"}});
  return req;
}

struct Percentiles {
  double p50 = 0, p95 = 0, p99 = 0;
};

Percentiles percentiles(std::vector<double>& samples) {
  Percentiles p;
  if (samples.empty()) return p;
  std::sort(samples.begin(), samples.end());
  const auto at = [&](double q) {
    const std::size_t idx = static_cast<std::size_t>(q * static_cast<double>(samples.size() - 1));
    return samples[idx];
  };
  p.p50 = at(0.50);
  p.p95 = at(0.95);
  p.p99 = at(0.99);
  return p;
}

struct RunResult {
  std::size_t requests = 0;
  std::size_t errors = 0;
  double wall_s = 0;
  Percentiles latency_us;
};

// C concurrent keep-alive connections, each issuing R requests paced at a
// fixed per-connection interval. Latency is measured from the INTENDED send
// time, not from whenever the previous response happened to free the
// connection: a closed-loop client that stamps at actual-send silently
// excludes server stalls from its own tail (coordinated omission) — a 100 ms
// hiccup used to show up as one slow request instead of a backlog of them.
constexpr std::int64_t kPaceUs = 2000;  // per-connection request interval

RunResult run_clients(std::uint16_t port, const http::Request& request, std::size_t connections,
                      std::size_t requests_per_conn) {
  std::vector<std::vector<double>> latencies(connections);
  std::atomic<std::size_t> errors{0};
  std::vector<std::thread> clients;
  clients.reserve(connections);
  const auto wall_start = std::chrono::steady_clock::now();
  for (std::size_t c = 0; c < connections; ++c) {
    clients.emplace_back([&, c] {
      try {
        net::TcpStream stream = net::TcpStream::connect("127.0.0.1", port);
        net::HttpReader reader(&stream);
        latencies[c].reserve(requests_per_conn);
        const auto first_send = std::chrono::steady_clock::now();
        for (std::size_t r = 0; r < requests_per_conn; ++r) {
          // The schedule is fixed up front; a response that arrives late
          // leaves the next intended time in the past, so the queueing delay
          // it caused lands in the next sample instead of vanishing.
          const auto intended =
              first_send + std::chrono::microseconds(static_cast<std::int64_t>(r) * kPaceUs);
          std::this_thread::sleep_until(intended);
          net::write_request(stream, request);
          const auto response = reader.read_response();
          if (!response || !response->ok()) {
            ++errors;
            continue;
          }
          latencies[c].push_back(std::chrono::duration<double, std::micro>(
                                     std::chrono::steady_clock::now() - intended)
                                     .count());
        }
      } catch (const Error&) {
        ++errors;
      }
    });
  }
  for (std::thread& t : clients) t.join();
  RunResult result;
  result.wall_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - wall_start).count();
  std::vector<double> all;
  for (const auto& per_conn : latencies) {
    result.requests += per_conn.size();
    all.insert(all.end(), per_conn.begin(), per_conn.end());
  }
  result.errors = errors.load();
  result.latency_us = percentiles(all);
  return result;
}

void print_run(const char* name, std::size_t connections, std::size_t server_threads,
               const RunResult& r, bool trailing_comma) {
  // "loop": "closed" marks these as closed-loop (per-connection paced)
  // numbers: they measure achievable throughput at bounded concurrency, not
  // open-loop latency under an offered arrival rate. Never compare them
  // against BENCH_macro.json (open-loop) unqualified.
  std::printf("  {\"name\": \"%s\", \"loop\": \"closed\", \"pace_us\": %lld, "
              "\"connections\": %zu, \"server_threads\": %zu, "
              "\"conns_per_thread\": %.1f, \"requests\": %zu, \"errors\": %zu, "
              "\"wall_s\": %.3f, \"rps\": %.0f, \"p50_us\": %.0f, \"p95_us\": %.0f, "
              "\"p99_us\": %.0f}%s\n",
              name, static_cast<long long>(kPaceUs), connections, server_threads,
              static_cast<double>(connections) / static_cast<double>(server_threads),
              r.requests, r.errors, r.wall_s, static_cast<double>(r.requests) / r.wall_s,
              r.latency_us.p50, r.latency_us.p95, r.latency_us.p99,
              trailing_comma ? "," : "");
}

}  // namespace

int main(int argc, char** argv) {
  std::size_t connections = 64;
  std::size_t requests_per_conn = 25;
  if (argc > 1) connections = static_cast<std::size_t>(std::stoul(argv[1]));
  if (argc > 2) requests_per_conn = static_cast<std::size_t>(std::stoul(argv[2]));

  const apps::AppSpec spec = apps::make_wish();
  apps::OriginServer origin(&spec);
  const http::Request request = feed_request(spec);

  std::printf("{\n \"connscale\": [\n");

  // Reactor: every connection on ONE event-loop thread.
  {
    net::LiveOriginServer server(&origin, 0, /*loop_threads=*/1);
    const RunResult r = run_clients(server.port(), request, connections, requests_per_conn);
    server.stop();
    print_run("reactor_1loop", connections, 1, r, true);
  }

  // The same reactor on the io_uring completion backend (DESIGN.md §5l);
  // section absent on kernels without the required support.
  if (net::uring_supported()) {
    net::LiveOriginServer server(&origin, 0, /*loop_threads=*/1, "uring");
    const RunResult r = run_clients(server.port(), request, connections, requests_per_conn);
    server.stop();
    print_run("reactor_1loop_uring", connections, 1, r, true);
  }

  // Seed model: one blocking thread per connection.
  {
    ThreadPerConnOrigin server(&origin);
    const RunResult r = run_clients(server.port(), request, connections, requests_per_conn);
    print_run("thread_per_conn", connections, connections, r, true);
  }

  // Full proxy path: sequential unique misses share one warm pooled upstream
  // connection (the seed reconnected per fetch: reuse fraction 0).
  {
    const analysis::AnalysisResult analysis = analysis::analyze(apps::compile_app(spec));
    core::ProxyConfig config;
    config.default_expiration = minutes(30);
    core::EngineOptions engine_options;
    engine_options.seed = 7;
    core::ShardedProxyEngine engine(&analysis.signatures, &config, engine_options);
    net::LiveOriginServer upstream(&origin);
    net::LiveProxyServer::UpstreamMap upstreams;
    for (const apps::EndpointSpec& ep : spec.endpoints) upstreams[ep.host] = upstream.port();
    net::LiveProxyServer proxy(&engine, std::move(upstreams));

    constexpr std::size_t kMisses = 150;
    net::TcpStream stream = net::TcpStream::connect("127.0.0.1", proxy.port());
    net::HttpReader reader(&stream);
    std::vector<double> latencies;
    latencies.reserve(kMisses);
    std::size_t errors = 0;
    const auto wall_start = std::chrono::steady_clock::now();
    for (std::size_t i = 0; i < kMisses; ++i) {
      http::Request req = request;
      req.headers.set("X-Appx-User", "bench");
      req.uri.add_query_param("unique", std::to_string(i));
      const auto start = std::chrono::steady_clock::now();
      net::write_request(stream, req);
      const auto response = reader.read_response();
      if (!response || !response->ok()) {
        ++errors;
        continue;
      }
      latencies.push_back(std::chrono::duration<double, std::micro>(
                              std::chrono::steady_clock::now() - start)
                              .count());
    }
    const double wall_s =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - wall_start).count();
    proxy.drain_prefetches();
    const net::UpstreamPool& pool = proxy.upstream_pool();
    const double reuse_fraction =
        static_cast<double>(pool.reuses()) /
        static_cast<double>(std::max<std::uint64_t>(1, pool.reuses() + pool.connects()));
    const Percentiles p = percentiles(latencies);
    std::printf("  {\"name\": \"proxy_pooled_misses\", \"loop\": \"closed\", "
                "\"requests\": %zu, \"errors\": %zu, "
                "\"wall_s\": %.3f, \"pool_reuses\": %llu, \"pool_connects\": %llu, "
                "\"pool_stale\": %llu, \"pool_retries\": %llu, \"reuse_fraction\": %.3f, "
                "\"p50_us\": %.0f, \"p95_us\": %.0f, \"p99_us\": %.0f}\n",
                latencies.size(), errors, wall_s,
                static_cast<unsigned long long>(pool.reuses()),
                static_cast<unsigned long long>(pool.connects()),
                static_cast<unsigned long long>(pool.stale_discards()),
                static_cast<unsigned long long>(pool.retries()), reuse_fraction, p.p50, p.p95,
                p.p99);
    proxy.stop();
    upstream.stop();
  }

  std::printf(" ]\n}\n");
  return 0;
}
