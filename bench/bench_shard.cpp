// Sharded-runtime microbenchmark (google-benchmark): engine-event throughput
// of the single-mutex runtime (one ProxyEngine behind one external lock — the
// pre-sharding LiveProxyServer arrangement) vs the ShardedProxyEngine, where
// each user's events take only the owning shard's lock.
//
// The measured event is a warm cache-hit on_request: a full engine event
// (cache lookup, per-signature hit-rate accounting, metrics, Decision
// hand-off) with a critical section of a few hundred nanoseconds — the
// regime where one global mutex serialises everything and the per-shard
// locks stay uncontended. One user per benchmark thread, users pinned to
// distinct shards.
#include <benchmark/benchmark.h>

#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "core/engine_options.hpp"
#include "core/proxy.hpp"
#include "core/session.hpp"
#include "core/sharded_proxy.hpp"
#include "../tests/wish_fixture.hpp"

namespace {

using namespace appx;
using testfix::make_feed_request;
using testfix::make_feed_response;
using testfix::make_product_request;
using testfix::make_product_response;
using testfix::make_wish_set;

constexpr int kMaxThreads = 8;
// Resident background users, as on a loaded proxy: string-keyed routing pays
// its map lookups against this population on every event, UserId routing
// does not.
constexpr int kBackgroundUsers = 4096;

// Resolve every surfaced prefetch job from a canned origin so the user's
// cache ends up warm (products "b" and "c" resident).
void resolve_prefetches(core::ProxyLike& engine, std::vector<core::PrefetchJob> jobs) {
  while (!jobs.empty()) {
    std::vector<core::PrefetchJob> next;
    for (core::PrefetchJob& job : jobs) {
      http::Response resp;
      if (job.request.uri.path == "/product/get") {
        resp = make_product_response("m", 1500);
      } else if (job.request.uri.path == "/img") {
        resp.opaque_payload = kilobytes(300);
      } else {
        resp.body = "{}";
      }
      core::Decision chained;
      engine.on_prefetch_response(job.uid, job, resp, 0, 100.0, &chained);
      for (core::PrefetchJob& j : chained.prefetches) next.push_back(std::move(j));
    }
    jobs = std::move(next);
  }
}

void warm_user(core::ProxyLike& engine, const std::string& user) {
  core::Session session = engine.session(user, 0);
  session.on_request(make_feed_request(), 0);
  resolve_prefetches(engine,
                     session.on_response(make_feed_request(), make_feed_response({"a", "b", "c"}), 0)
                         .prefetches);
  session.on_request(make_product_request("a"), 0);
  resolve_prefetches(
      engine,
      session.on_response(make_product_request("a"), make_product_response("m", 1), 0).prefetches);
}

// --- single-mutex runtime ---------------------------------------------------

struct SingleMutexRuntime {
  core::SignatureSet set = make_wish_set();
  core::ProxyConfig config;
  std::mutex mutex;  // the one global engine lock
  std::unique_ptr<core::ProxyEngine> engine;
  std::vector<std::string> users;

  SingleMutexRuntime() {
    config.default_expiration = minutes(30);
    config.max_users = kBackgroundUsers + kMaxThreads + 1;
    engine = std::make_unique<core::ProxyEngine>(&set, &config, 7);
    for (int t = 0; t < kMaxThreads; ++t) {
      users.push_back("u" + std::to_string(t));
      warm_user(*engine, users.back());
    }
    for (int i = 0; i < kBackgroundUsers; ++i) {
      engine->resolve_user("resident-user-" + std::to_string(i), 0);
    }
  }
};

void BM_EngineEventSingleMutex(benchmark::State& state) {
  static SingleMutexRuntime* rt = new SingleMutexRuntime();
  core::Session session;
  {
    std::lock_guard<std::mutex> lock(rt->mutex);
    session = rt->engine->session(rt->users[state.thread_index()], 1);
  }
  const http::Request request = make_product_request("b");
  for (auto _ : state) {
    std::lock_guard<std::mutex> lock(rt->mutex);
    core::Decision d = session.on_request(request, 1);
    benchmark::DoNotOptimize(d.served);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_EngineEventSingleMutex)->Threads(1)->UseRealTime();
BENCHMARK(BM_EngineEventSingleMutex)->Threads(kMaxThreads)->UseRealTime();

// --- sharded runtime --------------------------------------------------------

struct ShardedRuntime {
  core::SignatureSet set = make_wish_set();
  core::ProxyConfig config;
  std::unique_ptr<core::ShardedProxyEngine> engine;
  std::vector<std::string> users;  // users[t] lands on shard t

  ShardedRuntime() {
    config.default_expiration = minutes(30);
    core::EngineOptions options;
    options.shards = kMaxThreads;
    options.seed = 7;
    options.max_users = kBackgroundUsers + kMaxThreads + 1;
    engine = std::make_unique<core::ShardedProxyEngine>(&set, &config, options);
    for (int i = 0; i < kBackgroundUsers; ++i) {
      engine->resolve_user("resident-user-" + std::to_string(i), 0);
    }
    for (int t = 0; t < kMaxThreads; ++t) {
      std::string name;
      for (int i = 0;; ++i) {
        name = "u" + std::to_string(t) + "_" + std::to_string(i);
        if (engine->shard_index_for(name) == static_cast<std::size_t>(t)) break;
      }
      users.push_back(name);
      warm_user(*engine, name);
    }
  }
};

void BM_EngineEventSharded(benchmark::State& state) {
  static ShardedRuntime* rt = new ShardedRuntime();
  // thread_safe() engine: no external lock, the shard lock inside the event
  // is the only synchronisation.
  core::Session session = rt->engine->session(rt->users[state.thread_index()], 1);
  const http::Request request = make_product_request("b");
  for (auto _ : state) {
    core::Decision d = session.on_request(request, 1);
    benchmark::DoNotOptimize(d.served);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_EngineEventSharded)->Threads(1)->UseRealTime();
BENCHMARK(BM_EngineEventSharded)->Threads(kMaxThreads)->UseRealTime();

// --- runtime dispatch overhead ----------------------------------------------
//
// Isolates the cost the sharding redesign removes from every event: the
// global contended mutex plus string-keyed user routing of the legacy API,
// vs an uncontended shard lock plus O(1) UserId slot routing. The engine
// work itself (matching, cache, learning) is identical code either way, so
// this pair — an empty-scheduler pump, the cheapest event — is the pure
// runtime overhead per event. On a single-core host the full-event pair
// above shows parity (the event body dominates and there is no parallelism
// to reclaim); this pair and multi-core hosts show the redesign's gain.

void BM_EventDispatchSingleMutex(benchmark::State& state) {
  static SingleMutexRuntime* rt = new SingleMutexRuntime();
  const std::string& user = rt->users[state.thread_index()];
  for (auto _ : state) {
    std::lock_guard<std::mutex> lock(rt->mutex);
    // Legacy call pattern: resolve the user by name, surface pending jobs.
    core::UserId id = rt->engine->resolve_user(user, 1);
    core::Decision out;
    rt->engine->pump(id, 1, &out);
    benchmark::DoNotOptimize(out);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_EventDispatchSingleMutex)->Threads(1)->UseRealTime();
BENCHMARK(BM_EventDispatchSingleMutex)->Threads(kMaxThreads)->UseRealTime();

void BM_EventDispatchSharded(benchmark::State& state) {
  static ShardedRuntime* rt = new ShardedRuntime();
  core::Session session = rt->engine->session(rt->users[state.thread_index()], 1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(session.take_prefetches(1));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_EventDispatchSharded)->Threads(1)->UseRealTime();
BENCHMARK(BM_EventDispatchSharded)->Threads(kMaxThreads)->UseRealTime();

}  // namespace

BENCHMARK_MAIN();
