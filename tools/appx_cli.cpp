// appx — the command-line face of the framework.
//
//   appx compile <app> <out.sapk>          compile an app model to a binary
//   appx disasm <in.sapk>                  textual listing of a binary
//   appx analyze <in.sapk> [opts]          extract signatures + dependencies
//        --sigs <out.sig>                  persist the signature artefact
//        --no-intent --no-rx --no-alias    disable analysis extensions
//   appx verify <app>                      run the §4.3 verification phase;
//                                          prints the initial Fig. 9 config
//   appx demo <app>                        live loopback proxy demo (sockets)
//
// <app> is one of: wish geek doordash purpleocean postmates.
#include <chrono>
#include <cstring>
#include <iostream>
#include <string>
#include <vector>

#include "analysis/analyzer.hpp"
#include "apps/catalog.hpp"
#include "apps/compiler.hpp"
#include "eval/report.hpp"
#include "eval/verification.hpp"
#include "ir/disasm.hpp"
#include "net/servers.hpp"
#include "util/byte_io.hpp"
#include "util/error.hpp"

namespace {

using namespace appx;

int usage() {
  std::cerr << "usage:\n"
               "  appx compile <app> <out.sapk>\n"
               "  appx disasm <in.sapk>\n"
               "  appx analyze <in.sapk> [--sigs out.sig] [--no-intent] [--no-rx] "
               "[--no-alias]\n"
               "  appx verify <app>\n"
               "  appx demo <app>\n"
               "apps: wish geek doordash purpleocean postmates\n";
  return 2;
}

apps::AppSpec app_by_name(const std::string& name) {
  if (name == "wish") return apps::make_wish();
  if (name == "geek") return apps::make_geek();
  if (name == "doordash") return apps::make_doordash();
  if (name == "purpleocean") return apps::make_purpleocean();
  if (name == "postmates") return apps::make_postmates();
  throw InvalidArgumentError("unknown app '" + name + "'");
}

int cmd_compile(const std::vector<std::string>& args) {
  if (args.size() != 2) return usage();
  const apps::AppSpec spec = app_by_name(args[0]);
  const ir::Program program = apps::compile_app(spec);
  const auto blob = program.serialize();
  write_file(args[1], blob);
  std::cout << "wrote " << args[1] << ": " << blob.size() << " bytes, "
            << program.methods.size() << " methods, " << program.instruction_count()
            << " instructions\n";
  return 0;
}

int cmd_disasm(const std::vector<std::string>& args) {
  if (args.size() != 1) return usage();
  const ir::Program program = ir::Program::deserialize(read_file(args[0]));
  std::cout << ir::disassemble(program);
  return 0;
}

int cmd_analyze(const std::vector<std::string>& args) {
  if (args.empty()) return usage();
  analysis::AnalysisOptions options;
  std::string sigs_out;
  for (std::size_t i = 1; i < args.size(); ++i) {
    if (args[i] == "--no-intent") {
      options.intent_support = false;
    } else if (args[i] == "--no-rx") {
      options.rx_support = false;
    } else if (args[i] == "--no-alias") {
      options.alias_analysis = false;
    } else if (args[i] == "--sigs" && i + 1 < args.size()) {
      sigs_out = args[++i];
    } else {
      return usage();
    }
  }

  const auto started = std::chrono::steady_clock::now();
  const auto result = analysis::analyze_sapk(read_file(args[0]), options);
  const double ms =
      std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() - started)
          .count();

  eval::TablePrinter table({"Metric", "Value"});
  table.add_row({"signatures", std::to_string(result.signatures.size())});
  table.add_row({"prefetchable", std::to_string(result.signatures.prefetchable().size())});
  table.add_row({"dependency edges", std::to_string(result.signatures.edges().size())});
  table.add_row({"max chain length", std::to_string(result.signatures.max_chain_length())});
  table.add_row({"methods analyzed", std::to_string(result.report.methods_analyzed)});
  table.add_row(
      {"abstract instructions", std::to_string(result.report.instructions_interpreted)});
  table.add_row({"unresolved run-time values",
                 std::to_string(result.report.unresolved_values)});
  table.add_row({"analysis time", eval::TablePrinter::fmt(ms, 1) + " ms"});
  table.print(std::cout);

  if (!sigs_out.empty()) {
    const auto blob = result.signatures.serialize();
    write_file(sigs_out, blob);
    std::cout << "\nwrote signature artefact " << sigs_out << " (" << blob.size()
              << " bytes)\n";
  }
  return 0;
}

int cmd_verify(const std::vector<std::string>& args) {
  if (args.size() != 1) return usage();
  const eval::AnalyzedApp app = eval::analyze_app(app_by_name(args[0]));
  eval::VerificationParams params;
  params.fuzz.duration = minutes(15);
  const auto outcome = eval::run_verification(app, params);
  std::cerr << "verification: " << outcome.prefetches_observed << " prefetches observed, "
            << outcome.verified.size() << " signatures verified, " << outcome.failing.size()
            << " disabled, " << outcome.expiry_estimates.size()
            << " expiration estimates\n";
  std::cout << outcome.initial_config.to_json() << "\n";
  return 0;
}

int cmd_demo(const std::vector<std::string>& args) {
  if (args.size() != 1) return usage();
  const apps::AppSpec spec = app_by_name(args[0]);
  const auto analysis = analysis::analyze(apps::compile_app(spec));
  apps::OriginServer origin(&spec);
  net::LiveOriginServer origin_server(&origin);
  core::ProxyConfig config;
  config.default_expiration = minutes(30);
  core::AppxProxy engine(&analysis.signatures, &config, 1);
  net::LiveProxyServer::UpstreamMap upstreams;
  for (const apps::EndpointSpec& ep : spec.endpoints) upstreams[ep.host] = origin_server.port();
  net::LiveProxyServer proxy(&engine, std::move(upstreams));

  std::cout << spec.name << " origin on 127.0.0.1:" << origin_server.port()
            << ", proxy on 127.0.0.1:" << proxy.port() << "\n"
            << "send HTTP/1.1 requests with an X-Appx-User header; press Enter to stop.\n";
  std::string line;
  std::getline(std::cin, line);
  proxy.stop();
  origin_server.stop();
  const auto& stats = engine.engine().stats();
  std::cout << "served " << stats.client_requests << " requests, " << stats.cache_hits
            << " from cache, " << stats.prefetches_issued << " prefetches\n";
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage();
  const std::string command = argv[1];
  std::vector<std::string> args(argv + 2, argv + argc);
  try {
    if (command == "compile") return cmd_compile(args);
    if (command == "disasm") return cmd_disasm(args);
    if (command == "analyze") return cmd_analyze(args);
    if (command == "verify") return cmd_verify(args);
    if (command == "demo") return cmd_demo(args);
  } catch (const appx::Error& e) {
    std::cerr << "appx: " << e.what() << "\n";
    return 1;
  }
  return usage();
}
