// appx — the command-line face of the framework.
//
//   appx compile <app> <out.sapk>          compile an app model to a binary
//   appx disasm <in.sapk>                  textual listing of a binary
//   appx analyze <in.sapk> [opts]          extract signatures + dependencies
//        --sigs <out.sig>                  persist the signature artefact
//        --no-intent --no-rx --no-alias    disable analysis extensions
//   appx verify <app>                      run the §4.3 verification phase;
//                                          prints the initial Fig. 9 config
//   appx gen-config <app> [opts]           verification + policy-engine knobs:
//        --out <file>                      write the config instead of stdout
//        --minutes <N>                     fuzzing duration (default 15)
//        --probability <P>                 global prefetch probability
//        --budget-mb <N>                   per-user data budget (paced by the
//                                          policy engine's token bucket)
//   appx demo <app>                        live loopback proxy demo (sockets)
//   appx node <app> [opts]                 run one cluster node (DESIGN.md §5k):
//        --name <n> --membership <file>    identity + static node list (port
//                                          comes from the membership entry)
//        --state <path>                    snapshot path for warm restart
//        --snapshot-ms <N>                 dump cadence (default 1000)
//        --shards <N>                      engine shards (default 2)
//   appx snapshot <host:port> [--out f]    pull a live node's learned-state
//                                          snapshot (binary) to a file
//   appx stats <host:port> [--json]        scrape a live proxy's /appx/metrics
//                                          and pretty-print it
//   appx uring-check                       probe io_uring event-loop support
//                                          (exit 0 yes, 3 no; used by CI)
//
// <app> is one of: wish geek doordash purpleocean postmates.
#include <chrono>
#include <cstring>
#include <iostream>
#include <optional>
#include <string>
#include <vector>

#include "analysis/analyzer.hpp"
#include "apps/catalog.hpp"
#include "cluster/membership.hpp"
#include "apps/compiler.hpp"
#include "core/sharded_proxy.hpp"
#include "eval/report.hpp"
#include "eval/verification.hpp"
#include "ir/disasm.hpp"
#include "json/json.hpp"
#include "net/event_loop.hpp"
#include "net/http_io.hpp"
#include "net/servers.hpp"
#include "net/socket.hpp"
#include "util/byte_io.hpp"
#include "util/error.hpp"

namespace {

using namespace appx;

int usage() {
  std::cerr << "usage:\n"
               "  appx compile <app> <out.sapk>\n"
               "  appx disasm <in.sapk>\n"
               "  appx analyze <in.sapk> [--sigs out.sig] [--no-intent] [--no-rx] "
               "[--no-alias]\n"
               "  appx verify <app>\n"
               "  appx gen-config <app> [--out file] [--minutes N] [--probability P] "
               "[--budget-mb N]\n"
               "  appx demo <app>\n"
               "  appx node <app> --name <n> --membership <file> [--state <path>] "
               "[--snapshot-ms N] [--shards N]\n"
               "  appx snapshot <host:port> [--out <file>]\n"
               "  appx stats <host:port> [--json]\n"
               "  appx uring-check\n"
               "apps: wish geek doordash purpleocean postmates\n";
  return 2;
}

apps::AppSpec app_by_name(const std::string& name) {
  if (name == "wish") return apps::make_wish();
  if (name == "geek") return apps::make_geek();
  if (name == "doordash") return apps::make_doordash();
  if (name == "purpleocean") return apps::make_purpleocean();
  if (name == "postmates") return apps::make_postmates();
  throw InvalidArgumentError("unknown app '" + name + "'");
}

int cmd_compile(const std::vector<std::string>& args) {
  if (args.size() != 2) return usage();
  const apps::AppSpec spec = app_by_name(args[0]);
  const ir::Program program = apps::compile_app(spec);
  const auto blob = program.serialize();
  write_file(args[1], blob);
  std::cout << "wrote " << args[1] << ": " << blob.size() << " bytes, "
            << program.methods.size() << " methods, " << program.instruction_count()
            << " instructions\n";
  return 0;
}

int cmd_disasm(const std::vector<std::string>& args) {
  if (args.size() != 1) return usage();
  const ir::Program program = ir::Program::deserialize(read_file(args[0]));
  std::cout << ir::disassemble(program);
  return 0;
}

int cmd_analyze(const std::vector<std::string>& args) {
  if (args.empty()) return usage();
  analysis::AnalysisOptions options;
  std::string sigs_out;
  for (std::size_t i = 1; i < args.size(); ++i) {
    if (args[i] == "--no-intent") {
      options.intent_support = false;
    } else if (args[i] == "--no-rx") {
      options.rx_support = false;
    } else if (args[i] == "--no-alias") {
      options.alias_analysis = false;
    } else if (args[i] == "--sigs" && i + 1 < args.size()) {
      sigs_out = args[++i];
    } else {
      return usage();
    }
  }

  const auto started = std::chrono::steady_clock::now();
  const auto result = analysis::analyze_sapk(read_file(args[0]), options);
  const double ms =
      std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() - started)
          .count();

  eval::TablePrinter table({"Metric", "Value"});
  table.add_row({"signatures", std::to_string(result.signatures.size())});
  table.add_row({"prefetchable", std::to_string(result.signatures.prefetchable().size())});
  table.add_row({"dependency edges", std::to_string(result.signatures.edges().size())});
  table.add_row({"max chain length", std::to_string(result.signatures.max_chain_length())});
  table.add_row({"methods analyzed", std::to_string(result.report.methods_analyzed)});
  table.add_row(
      {"abstract instructions", std::to_string(result.report.instructions_interpreted)});
  table.add_row({"unresolved run-time values",
                 std::to_string(result.report.unresolved_values)});
  table.add_row({"analysis time", eval::TablePrinter::fmt(ms, 1) + " ms"});
  table.print(std::cout);

  if (!sigs_out.empty()) {
    const auto blob = result.signatures.serialize();
    write_file(sigs_out, blob);
    std::cout << "\nwrote signature artefact " << sigs_out << " (" << blob.size()
              << " bytes)\n";
  }
  return 0;
}

int cmd_verify(const std::vector<std::string>& args) {
  if (args.size() != 1) return usage();
  const eval::AnalyzedApp app = eval::analyze_app(app_by_name(args[0]));
  eval::VerificationParams params;
  params.fuzz.duration = minutes(15);
  const auto outcome = eval::run_verification(app, params);
  std::cerr << "verification: " << outcome.prefetches_observed << " prefetches observed, "
            << outcome.verified.size() << " signatures verified, " << outcome.failing.size()
            << " disabled, " << outcome.expiry_estimates.size()
            << " expiration estimates\n";
  std::cout << outcome.initial_config.to_json() << "\n";
  return 0;
}

// `appx verify` plus deployment tuning: the verified Fig. 9 config with the
// cost-aware policy engine (DESIGN.md §5j) switched on, so learned expiry
// keeps refining the probed TTL estimates at run time and admission/pacing
// guard the data budget.
int cmd_gen_config(const std::vector<std::string>& args) {
  if (args.empty()) return usage();
  std::string out_path;
  double fuzz_minutes = 15.0;
  std::optional<double> probability;
  std::optional<double> budget_mb;
  for (std::size_t i = 1; i < args.size(); ++i) {
    if (args[i] == "--out" && i + 1 < args.size()) {
      out_path = args[++i];
    } else if (args[i] == "--minutes" && i + 1 < args.size()) {
      fuzz_minutes = std::stod(args[++i]);
    } else if (args[i] == "--probability" && i + 1 < args.size()) {
      probability = std::stod(args[++i]);
    } else if (args[i] == "--budget-mb" && i + 1 < args.size()) {
      budget_mb = std::stod(args[++i]);
    } else {
      return usage();
    }
  }

  const eval::AnalyzedApp app = eval::analyze_app(app_by_name(args[0]));
  eval::VerificationParams params;
  params.fuzz.duration = minutes(fuzz_minutes);
  const auto outcome = eval::run_verification(app, params);

  core::ProxyConfig config = outcome.initial_config;
  config.policy.enabled = true;
  config.policy.learn_expiry = true;
  if (probability) config.global_probability = *probability;
  if (budget_mb) config.data_budget = megabytes(*budget_mb);
  config.policy.validate().throw_if_error();

  std::cerr << "gen-config: " << outcome.verified.size() << " signatures verified, "
            << outcome.failing.size() << " disabled, " << outcome.expiry_estimates.size()
            << " probed expirations (refined online by learned expiry)\n";
  const std::string text = config.to_json() + "\n";
  if (out_path.empty()) {
    std::cout << text;
  } else {
    write_file(out_path, std::vector<std::uint8_t>(text.begin(), text.end()));
    std::cerr << "wrote " << out_path << " (" << text.size() << " bytes)\n";
  }
  return 0;
}

int cmd_demo(const std::vector<std::string>& args) {
  if (args.size() != 1) return usage();
  const apps::AppSpec spec = app_by_name(args[0]);
  const auto analysis = analysis::analyze(apps::compile_app(spec));
  apps::OriginServer origin(&spec);
  net::LiveOriginServer origin_server(&origin);
  core::ProxyConfig config;
  config.default_expiration = minutes(30);
  // The sharded runtime: one shard per hardware thread, no global engine
  // lock between the proxy's connection threads.
  core::ShardedProxyEngine engine(&analysis.signatures, &config);
  net::LiveProxyServer::UpstreamMap upstreams;
  for (const apps::EndpointSpec& ep : spec.endpoints) upstreams[ep.host] = origin_server.port();
  net::LiveProxyServer proxy(&engine, std::move(upstreams));

  std::cout << spec.name << " origin on 127.0.0.1:" << origin_server.port()
            << ", proxy on 127.0.0.1:" << proxy.port() << "\n"
            << "send HTTP/1.1 requests with an X-Appx-User header; press Enter to stop.\n";
  std::string line;
  std::getline(std::cin, line);
  proxy.stop();
  origin_server.stop();
  const auto& stats = engine.stats();
  std::cout << "served " << stats.client_requests << " requests, " << stats.cache_hits
            << " from cache, " << stats.prefetches_issued << " prefetches\n";
  return 0;
}

// One admin-path GET against host:port; returns the response or nullopt.
std::optional<http::Response> admin_get(const std::string& hostport, const std::string& path) {
  const auto colon = hostport.rfind(':');
  if (colon == std::string::npos) return std::nullopt;
  const std::string host = hostport.substr(0, colon);
  const int port = std::stoi(hostport.substr(colon + 1));
  net::TcpStream stream = net::TcpStream::connect(host, static_cast<std::uint16_t>(port),
                                                  seconds(5));
  stream.set_read_timeout(seconds(10));
  stream.set_write_timeout(seconds(10));
  http::Request request;
  request.method = "GET";
  request.uri.path = path;
  request.headers.set("Host", hostport);
  net::write_request(stream, request);
  net::HttpReader reader(&stream);
  return reader.read_response();
}

// Pull a node's learned-state snapshot (the same bytes its periodic writer
// persists) and save it — an on-demand dump for backups or pre-drain copies.
int cmd_snapshot(const std::vector<std::string>& args) {
  if (args.empty() || args.size() > 3) return usage();
  std::string out_path = "appx-state.snap";
  for (std::size_t i = 1; i < args.size(); ++i) {
    if (args[i] == "--out" && i + 1 < args.size()) {
      out_path = args[++i];
    } else {
      return usage();
    }
  }
  const auto response = admin_get(args[0], "/appx/snapshot");
  if (!response || response->status != 200) {
    std::cerr << "appx snapshot: dump failed"
              << (response ? " (status " + std::to_string(response->status) + ")" : "")
              << "\n";
    return 1;
  }
  const std::string_view body = response->body.view();
  write_file(out_path, std::vector<std::uint8_t>(body.begin(), body.end()));
  std::cout << "wrote " << out_path << " (" << body.size() << " bytes)\n";
  return 0;
}

// Run one cluster node: a sharded engine + loopback origin behind a live
// proxy, with warm-restart snapshots when --state is given. Blocks until
// stdin closes (orchestrators hold the pipe; a killed node just dies).
int cmd_node(const std::vector<std::string>& args) {
  if (args.empty()) return usage();
  std::string name;
  std::string membership_path;
  std::string state_path;
  double snapshot_ms = 1000.0;
  std::size_t shards = 2;
  for (std::size_t i = 1; i < args.size(); ++i) {
    if (args[i] == "--name" && i + 1 < args.size()) {
      name = args[++i];
    } else if (args[i] == "--membership" && i + 1 < args.size()) {
      membership_path = args[++i];
    } else if (args[i] == "--state" && i + 1 < args.size()) {
      state_path = args[++i];
    } else if (args[i] == "--snapshot-ms" && i + 1 < args.size()) {
      snapshot_ms = std::stod(args[++i]);
    } else if (args[i] == "--shards" && i + 1 < args.size()) {
      shards = static_cast<std::size_t>(std::stoul(args[++i]));
    } else {
      return usage();
    }
  }
  if (name.empty() || membership_path.empty()) return usage();

  const cluster::Membership membership = cluster::Membership::load(membership_path);
  const cluster::MemberNode* self = membership.find(name);
  if (self == nullptr) {
    std::cerr << "appx node: '" << name << "' not in " << membership_path << "\n";
    return 1;
  }

  const apps::AppSpec spec = app_by_name(args[0]);
  const auto analysis = analysis::analyze(apps::compile_app(spec));
  apps::OriginServer origin(&spec);
  net::LiveOriginServer origin_server(&origin);
  core::ProxyConfig config;
  config.default_expiration = minutes(30);
  core::EngineOptions options;
  options.shards = shards;
  options.state_snapshot_path = state_path;
  options.state_snapshot_interval = static_cast<Duration>(snapshot_ms * 1000.0);
  core::ShardedProxyEngine engine(&analysis.signatures, &config, options);
  net::LiveProxyServer::UpstreamMap upstreams;
  for (const apps::EndpointSpec& ep : spec.endpoints) upstreams[ep.host] = origin_server.port();
  net::LiveProxyServer proxy(&engine, std::move(upstreams), self->port, options);

  // Orchestrators (the cluster integration test) wait for this exact line.
  std::cout << "READY node=" << name << " generation=" << membership.generation()
            << " proxy=" << proxy.port() << " origin=" << origin_server.port() << "\n"
            << std::flush;
  std::string line;
  std::getline(std::cin, line);
  proxy.stop();
  origin_server.stop();
  return 0;
}

// Scrape a live proxy's admin endpoint and pretty-print the registry.
int cmd_stats(const std::vector<std::string>& args) {
  if (args.empty() || args.size() > 2) return usage();
  bool raw_json = false;
  if (args.size() == 2) {
    if (args[1] != "--json") return usage();
    raw_json = true;
  }
  const auto response = admin_get(args[0], "/appx/metrics.json");
  if (!response || response->status != 200) {
    std::cerr << "appx stats: scrape failed"
              << (response ? " (status " + std::to_string(response->status) + ")" : "")
              << "\n";
    return 1;
  }
  if (raw_json) {
    std::cout << response->body << "\n";
    return 0;
  }

  const json::Value root = json::parse(response->body);
  const auto fmt_int = [](std::int64_t v) { return std::to_string(v); };

  eval::TablePrinter counters({"Counter", "Value"});
  for (const auto& [name, value] : root.as_object().at("counters").as_object()) {
    counters.add_row({name, fmt_int(value.as_int())});
  }
  eval::TablePrinter gauges({"Gauge", "Value"});
  for (const auto& [name, value] : root.as_object().at("gauges").as_object()) {
    gauges.add_row({name, fmt_int(value.as_int())});
  }
  eval::TablePrinter hists({"Histogram", "Count", "Mean", "p50", "p95", "p99", "Max"});
  for (const auto& [name, value] : root.as_object().at("histograms").as_object()) {
    const json::Object& h = value.as_object();
    hists.add_row({name, fmt_int(h.at("count").as_int()),
                   eval::TablePrinter::fmt(h.at("mean").as_double(), 1),
                   fmt_int(h.at("p50").as_int()), fmt_int(h.at("p95").as_int()),
                   fmt_int(h.at("p99").as_int()), fmt_int(h.at("max").as_int())});
  }
  counters.print(std::cout);
  std::cout << "\n";
  gauges.print(std::cout);
  std::cout << "\n";
  hists.print(std::cout);

  // Waste summary: how much of the prefetch spend never got served.
  const json::Object& counter_obj = root.as_object().at("counters").as_object();
  const auto counter = [&](const std::string& name) -> std::int64_t {
    const auto it = counter_obj.find(name);
    return it == counter_obj.end() ? 0 : it->second.as_int();
  };
  const std::int64_t prefetch_bytes = counter("appx_prefetch_bytes_total");
  const std::int64_t wasted_bytes = counter("appx_prefetch_wasted_bytes_total");
  if (prefetch_bytes > 0) {
    std::cout << "\nprefetch waste: " << wasted_bytes << " / " << prefetch_bytes
              << " bytes wasted ("
              << eval::TablePrinter::pct(static_cast<double>(wasted_bytes) /
                                         static_cast<double>(prefetch_bytes))
              << "), " << counter("appx_prefetch_wasted_entries_total")
              << " entries left the cache unused\n";
  }

  // Durable-state freshness (only on nodes running with a snapshot path).
  const json::Object& gauge_obj = root.as_object().at("gauges").as_object();
  const auto gauge = [&](const std::string& name) -> std::int64_t {
    const auto it = gauge_obj.find(name);
    return it == gauge_obj.end() ? 0 : it->second.as_int();
  };
  const std::int64_t snap_bytes = gauge("appx_state_snapshot_bytes");
  const std::int64_t snap_ms = gauge("appx_state_snapshot_last_unix_ms");
  if (snap_bytes > 0) {
    std::cout << "\nstate snapshot: " << snap_bytes << " bytes";
    if (snap_ms > 0) {
      const std::int64_t now_ms = std::chrono::duration_cast<std::chrono::milliseconds>(
                                      std::chrono::system_clock::now().time_since_epoch())
                                      .count();
      std::cout << ", age " << eval::TablePrinter::fmt(
                       static_cast<double>(now_ms - snap_ms) / 1000.0, 1)
                << " s";
    }
    std::cout << "\n";
  }
  return 0;
}

// Reports whether this kernel can run the io_uring event-loop backend
// (DESIGN.md §5l). Exit 0 when supported, 3 when not — CI uses this to skip
// the uring job variant on old kernels instead of failing it.
int cmd_uring_check(const std::vector<std::string>& args) {
  if (!args.empty()) return usage();
  if (net::uring_supported()) {
    std::cout << "io_uring backend: supported\n";
    return 0;
  }
  std::cout << "io_uring backend: unsupported on this kernel "
               "(or disabled via APPX_NO_URING)\n";
  return 3;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage();
  const std::string command = argv[1];
  std::vector<std::string> args(argv + 2, argv + argc);
  try {
    if (command == "compile") return cmd_compile(args);
    if (command == "disasm") return cmd_disasm(args);
    if (command == "analyze") return cmd_analyze(args);
    if (command == "verify") return cmd_verify(args);
    if (command == "gen-config") return cmd_gen_config(args);
    if (command == "demo") return cmd_demo(args);
    if (command == "node") return cmd_node(args);
    if (command == "snapshot") return cmd_snapshot(args);
    if (command == "stats") return cmd_stats(args);
    if (command == "uring-check") return cmd_uring_check(args);
  } catch (const appx::Error& e) {
    std::cerr << "appx: " << e.what() << "\n";
    return 1;
  }
  return usage();
}
